package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"mie/internal/vec"
)

func TestRefineHammingKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prev := []vec.BitVec{randomBits(rng, 64)}
	if _, err := RefineHammingKMeans(nil, prev, RefineOptions{}); !errors.Is(err, ErrBadK) {
		t.Errorf("err = %v, want ErrBadK", err)
	}
	if _, err := RefineHammingKMeans(prev, nil, RefineOptions{}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	if _, err := RefineHammingKMeans(prev, []vec.BitVec{randomBits(rng, 32)}, RefineOptions{}); err == nil {
		t.Error("expected error for mismatched encoding sizes")
	}
	if _, err := RefineHammingKMeans([]vec.BitVec{randomBits(rng, 64), randomBits(rng, 32)}, prev, RefineOptions{}); err == nil {
		t.Error("expected error for mismatched centroid sizes")
	}
}

// Delta drawn from the same distribution as the previous epoch should barely
// move the codebook: drift stays near zero and unchanged clusters stay put.
func TestRefineStableUnderSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const bits = 256
	bases := []vec.BitVec{randomBits(rng, bits), randomBits(rng, bits), randomBits(rng, bits)}
	var train []vec.BitVec
	for _, base := range bases {
		for i := 0; i < 50; i++ {
			train = append(train, flipBits(rng, base, 10))
		}
	}
	full, err := HammingKMeans(train, 3, Options{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	var delta []vec.BitVec
	for _, base := range bases {
		for i := 0; i < 10; i++ {
			delta = append(delta, flipBits(rng, base, 10))
		}
	}
	res, err := RefineHammingKMeans(full.Centroids, delta, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift.MeanShift > 0.08 {
		t.Errorf("MeanShift = %v, want near zero for in-distribution delta", res.Drift.MeanShift)
	}
	if res.Drift.ReassignedFraction > 0.1 {
		t.Errorf("ReassignedFraction = %v, want near zero", res.Drift.ReassignedFraction)
	}
	if res.Drift.Exceeds(0.15, 0.5) {
		t.Error("in-distribution drift should not exceed default thresholds")
	}
}

// Refinement must actually track a moved cluster: feed delta samples around a
// shifted base and verify the attracted centroid moves toward it while the
// untouched centroids are byte-identical to the previous epoch.
func TestRefineTracksShiftedCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const bits = 256
	baseA, baseB := randomBits(rng, bits), randomBits(rng, bits)
	var train []vec.BitVec
	for i := 0; i < 60; i++ {
		train = append(train, flipBits(rng, baseA, 8))
		train = append(train, flipBits(rng, baseB, 8))
	}
	full, err := HammingKMeans(train, 2, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Shift cluster A by 30 bits and emit delta only from the shifted base.
	shifted := flipBits(rng, baseA, 30)
	var delta []vec.BitVec
	for i := 0; i < 40; i++ {
		delta = append(delta, flipBits(rng, shifted, 6))
	}
	res, err := RefineHammingKMeans(full.Centroids, delta, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Identify which previous centroid was closest to baseA.
	aIdx := NearestHamming(full.Centroids, baseA)
	bIdx := 1 - aIdx
	if vec.Hamming(res.Centroids[aIdx], shifted) >= vec.Hamming(full.Centroids[aIdx], shifted) {
		t.Errorf("refined centroid did not move toward the shifted base: %d -> %d",
			vec.Hamming(full.Centroids[aIdx], shifted), vec.Hamming(res.Centroids[aIdx], shifted))
	}
	if !res.Centroids[bIdx].Equal(full.Centroids[bIdx]) {
		t.Error("centroid with no delta samples must stay unchanged")
	}
	if res.Drift.MeanShift <= 0 {
		t.Error("drift should be positive when a cluster moved")
	}
	if res.Drift.MaxShift < res.Drift.MeanShift {
		t.Error("MaxShift must be >= MeanShift")
	}
}

// A delta from a completely different distribution should register high
// drift, signalling that a full re-cluster is warranted.
func TestRefineDriftSignalsDistributionShift(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const bits = 128
	var train []vec.BitVec
	bases := []vec.BitVec{randomBits(rng, bits), randomBits(rng, bits), randomBits(rng, bits), randomBits(rng, bits)}
	for _, base := range bases {
		for i := 0; i < 30; i++ {
			train = append(train, flipBits(rng, base, 5))
		}
	}
	full, err := HammingKMeans(train, 4, Options{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	inDelta := make([]vec.BitVec, 0, 40)
	for _, base := range bases {
		for i := 0; i < 10; i++ {
			inDelta = append(inDelta, flipBits(rng, base, 5))
		}
	}
	outDelta := make([]vec.BitVec, 40)
	for i := range outDelta {
		outDelta[i] = randomBits(rng, bits) // uniform noise, nothing like training
	}
	inRes, err := RefineHammingKMeans(full.Centroids, inDelta, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	outRes, err := RefineHammingKMeans(full.Centroids, outDelta, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outRes.Drift.MeanShift <= inRes.Drift.MeanShift {
		t.Errorf("out-of-distribution MeanShift %v should exceed in-distribution %v",
			outRes.Drift.MeanShift, inRes.Drift.MeanShift)
	}
}

func TestRefineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	prev := make([]vec.BitVec, 5)
	for i := range prev {
		prev[i] = randomBits(rng, 128)
	}
	delta := make([]vec.BitVec, 30)
	for i := range delta {
		delta[i] = randomBits(rng, 128)
	}
	a, err := RefineHammingKMeans(prev, delta, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RefineHammingKMeans(prev, delta, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Centroids {
		if !a.Centroids[c].Equal(b.Centroids[c]) {
			t.Fatal("refinement is not deterministic")
		}
	}
	if a.Drift != b.Drift {
		t.Fatalf("drift differs: %+v vs %+v", a.Drift, b.Drift)
	}
}

// Refinement must not mutate its inputs: the previous epoch's centroids are
// shared with the still-serving engine.
func TestRefineDoesNotMutatePrev(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	prev := make([]vec.BitVec, 3)
	orig := make([]vec.BitVec, 3)
	for i := range prev {
		prev[i] = randomBits(rng, 64)
		orig[i] = prev[i].Clone()
	}
	delta := make([]vec.BitVec, 50)
	for i := range delta {
		delta[i] = randomBits(rng, 64)
	}
	if _, err := RefineHammingKMeans(prev, delta, RefineOptions{MaxIter: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range prev {
		if !prev[i].Equal(orig[i]) {
			t.Fatal("RefineHammingKMeans mutated the previous centroids")
		}
	}
}

func TestDriftExceeds(t *testing.T) {
	d := DriftReport{MeanShift: 0.2, ReassignedFraction: 0.3}
	if !d.Exceeds(0.1, 0.5) {
		t.Error("mean shift over limit must trip")
	}
	if !d.Exceeds(0.5, 0.2) {
		t.Error("reassignment over limit must trip")
	}
	if d.Exceeds(0.5, 0.5) {
		t.Error("under both limits must not trip")
	}
	if d.Exceeds(0, 0) {
		t.Error("non-positive limits disable the check")
	}
}
