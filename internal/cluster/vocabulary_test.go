package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"mie/internal/vec"
)

func TestTrainVocabularyValidation(t *testing.T) {
	points, _ := gaussianBlobs(50, 3, 4, 30)
	if _, err := TrainVocabulary(points, VocabParams{Words: 0}, euclideanClusterer, vec.Euclidean); err == nil {
		t.Error("expected error for zero words")
	}
	if _, err := TrainVocabulary(nil, VocabParams{Words: 5}, euclideanClusterer, vec.Euclidean); !errors.Is(err, ErrNoPoints) {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
}

func TestVocabularyQuantizeMatchesNearestWord(t *testing.T) {
	points, _ := gaussianBlobs(400, 5, 8, 31)
	v, err := TrainVocabulary(points, VocabParams{
		Words: 40,
		Tree:  TreeParams{Branch: 4, Height: 2, Seed: 32},
		Seed:  32,
	}, euclideanClusterer, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 40 {
		t.Fatalf("Size = %d", v.Size())
	}
	// Tree lookup is approximate; require agreement with exact NN on the
	// vast majority of points, and exact agreement within the chosen cell.
	agree := 0
	for _, p := range points {
		got := v.Quantize(p)
		exact := v.scan(p, nil)
		if got == exact {
			agree++
		}
		if got < 0 || got >= v.Size() {
			t.Fatalf("word id %d out of range", got)
		}
	}
	if frac := float64(agree) / float64(len(points)); frac < 0.8 {
		t.Errorf("tree lookup agrees with exact NN on %.2f of points, want >= 0.8", frac)
	}
}

func TestVocabularySmallWordSetSkipsTree(t *testing.T) {
	points, _ := gaussianBlobs(60, 3, 4, 33)
	v, err := TrainVocabulary(points, VocabParams{
		Words: 3,
		Tree:  TreeParams{Branch: 4, Height: 2, Seed: 34},
		Seed:  34,
	}, euclideanClusterer, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if v.tree != nil {
		t.Error("expected linear-scan vocabulary for 3 words under branch 4")
	}
	for _, p := range points {
		if id := v.Quantize(p); id < 0 || id >= 3 {
			t.Fatalf("word id %d", id)
		}
	}
}

func TestVocabularyQuantizeAll(t *testing.T) {
	points, _ := gaussianBlobs(100, 4, 4, 35)
	v, err := TrainVocabulary(points, VocabParams{
		Words: 10,
		Tree:  TreeParams{Branch: 3, Height: 2, Seed: 36},
		Seed:  36,
	}, euclideanClusterer, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	h := v.QuantizeAll(points)
	var total uint64
	for id, c := range h {
		if id < 0 || id >= v.Size() {
			t.Errorf("word id %d out of range", id)
		}
		total += c
	}
	if total != uint64(len(points)) {
		t.Errorf("histogram total %d, want %d", total, len(points))
	}
}

func TestVocabularyHammingSpace(t *testing.T) {
	// The server-side MIE configuration: Hamming clustering over encodings.
	rng := rand.New(rand.NewSource(37))
	var points []vec.BitVec
	for c := 0; c < 4; c++ {
		base := randomBits(rng, 128)
		for i := 0; i < 30; i++ {
			points = append(points, flipBits(rng, base, 8))
		}
	}
	hamCluster := func(ps []vec.BitVec, k int, seed int64) ([]vec.BitVec, []int, error) {
		res, err := HammingKMeans(ps, k, Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return res.Centroids, res.Assignments, nil
	}
	dist := func(a, b vec.BitVec) float64 { return float64(vec.Hamming(a, b)) }
	v, err := TrainVocabulary(points, VocabParams{
		Words: 12,
		Tree:  TreeParams{Branch: 3, Height: 2, Seed: 38},
		Seed:  38,
	}, hamCluster, dist)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if id := v.Quantize(p); id < 0 || id >= v.Size() {
			t.Fatalf("word id %d", id)
		}
	}
}
