package cluster

import (
	"fmt"
	"math/rand"

	"mie/internal/vec"
)

// HammingResult carries the outcome of k-means over bit vectors.
type HammingResult struct {
	Centroids   []vec.BitVec
	Assignments []int
	Inertia     float64 // sum of Hamming distances to assigned centroids
	Iterations  int
}

// HammingKMeans clusters Dense-DPE encodings in Hamming space: assignment
// uses Hamming distance and the update step takes the per-bit majority vote
// of each cluster (the 1-median in Hamming space). This is the "small
// modification" the paper notes is needed for the cloud to train on
// encodings instead of plaintext features.
func HammingKMeans(points []vec.BitVec, k int, opts Options) (*HammingResult, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	opts.setDefaults()
	if k > len(points) {
		k = len(points)
	}
	n := points[0].Len()
	for i, p := range points {
		if p.Len() != n {
			return nil, fmt.Errorf("cluster: encoding %d has %d bits, want %d", i, p.Len(), n)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	centroids := seedHammingPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	res := &HammingResult{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		var inertia float64
		for i, p := range points {
			best, bestD := nearestHamming(centroids, p)
			assign[i] = best
			inertia += float64(bestD)
		}
		res.Inertia = inertia
		// Majority-vote update.
		ones := make([][]int, k)
		counts := make([]int, k)
		for c := range ones {
			ones[c] = make([]int, n)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for b := 0; b < n; b++ {
				if p.Get(b) {
					ones[c][b]++
				}
			}
		}
		moved := 0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far, farD := 0, -1
				for i, p := range points {
					if d := vec.Hamming(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = points[far].Clone()
				moved++
				continue
			}
			next := vec.NewBitVec(n)
			for b := 0; b < n; b++ {
				switch {
				case 2*ones[c][b] > counts[c]:
					next.Set(b, true)
				case 2*ones[c][b] == counts[c]:
					// Tie: keep the previous bit so the loop can converge.
					next.Set(b, centroids[c].Get(b))
				}
			}
			if !next.Equal(centroids[c]) {
				moved++
			}
			centroids[c] = next
		}
		if moved == 0 {
			break
		}
	}
	var inertia float64
	for i, p := range points {
		best, bestD := nearestHamming(centroids, p)
		assign[i] = best
		inertia += float64(bestD)
	}
	res.Centroids = centroids
	res.Assignments = assign
	res.Inertia = inertia
	return res, nil
}

// NearestHamming returns the index of the centroid closest to p in Hamming
// distance.
func NearestHamming(centroids []vec.BitVec, p vec.BitVec) int {
	best, _ := nearestHamming(centroids, p)
	return best
}

func nearestHamming(centroids []vec.BitVec, p vec.BitVec) (int, int) {
	best, bestD := 0, vec.Hamming(p, centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := vec.Hamming(p, centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// seedHammingPlusPlus mirrors k-means++ with Hamming distances.
func seedHammingPlusPlus(points []vec.BitVec, k int, rng *rand.Rand) []vec.BitVec {
	centroids := make([]vec.BitVec, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := float64(vec.Hamming(p, last))
			d = d * d
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			r -= w
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx].Clone())
	}
	return centroids
}
