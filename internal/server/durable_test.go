package server

import (
	"fmt"
	"testing"

	"mie/internal/core"
)

// TestServerRestartRecoversRepositories is the wire-level crash-safety test:
// a server backed by a durable service acknowledges writes over the
// network, goes down without any snapshot of its own (the final SaveService
// of a clean shutdown is deliberately skipped), and a new server over the
// same data directory serves the same repositories, objects and search
// results — snapshots carry the created repositories, the write-ahead log
// carries every acknowledged mutation since.
func TestServerRestartRecoversRepositories(t *testing.T) {
	dir := t.TempDir()
	cc := newCoreClient(t, nil)

	svc, _, err := core.OpenService(core.ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn := dial(t, srv, nil)
	if err := conn.CreateRepository(testCtx, "albums", smallOpts()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		obj := &core.Object{
			ID:    fmt.Sprintf("shot-%d", i),
			Owner: "alice",
			Text:  "harbor lighthouse sunset",
			Image: classImage(2, int64(i)),
		}
		up, err := cc.PrepareUpdate(obj, dataKey())
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Update(testCtx, "albums", up); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Remove(testCtx, "albums", "shot-3"); err != nil {
		t.Fatal(err)
	}
	// Kill the server without saving: recovery must stand on the WAL alone.
	_ = conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, report, err := core.OpenService(core.ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recovery errored: %v", err)
	}
	if report.ReplayedRecords != 5 {
		t.Errorf("replayed %d WAL records, want 5 (4 updates + 1 remove)", report.ReplayedRecords)
	}
	srv2, err := New("127.0.0.1:0", svc2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	conn2 := dial(t, srv2, nil)

	for i := 0; i < 3; i++ {
		ct, owner, err := conn2.Get(testCtx, "albums", fmt.Sprintf("shot-%d", i))
		if err != nil {
			t.Fatalf("acknowledged object shot-%d lost across restart: %v", i, err)
		}
		if owner != "alice" {
			t.Errorf("shot-%d owner = %q", i, owner)
		}
		obj, err := core.DecryptObject(ct, dataKey())
		if err != nil {
			t.Fatalf("shot-%d ciphertext corrupted across restart: %v", i, err)
		}
		if obj.ID != fmt.Sprintf("shot-%d", i) {
			t.Errorf("shot-%d decrypted as %q", i, obj.ID)
		}
	}
	if _, _, err := conn2.Get(testCtx, "albums", "shot-3"); err == nil {
		t.Error("removed object resurrected across restart")
	}
	// The recovered repository keeps serving queries (linear scan — the
	// repository was never trained).
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "lighthouse"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := conn2.Search(testCtx, "albums", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("recovered repository serves no search results")
	}
}
