package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/wire"
)

// ---------------------------------------------------------------------------
// Cross-version: a protocol-v1 client against the v2 server.
//
// v1Conn vendors the pre-v2 client verbatim in miniature: an ID-less
// three-field envelope, hand-rolled length-prefixed framing, no hello, one
// lockstep request at a time. It must keep working against today's server
// without any compatibility shims in the production code.
// ---------------------------------------------------------------------------

// v1Envelope is the wire envelope exactly as protocol v1 defined it.
type v1Envelope struct {
	Kind string
	Auth string
	Data []byte
}

type v1Conn struct {
	mu  sync.Mutex
	tcp net.Conn
}

func dialV1(t *testing.T, addr string) *v1Conn {
	t.Helper()
	tcp, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tcp.Close() })
	return &v1Conn{tcp: tcp}
}

func (c *v1Conn) roundTrip(kind string, req, resp interface{}) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return err
	}
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(v1Envelope{Kind: kind, Data: body.Bytes()}); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(frame.Len()))
	if _, err := c.tcp.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.tcp.Write(frame.Bytes()); err != nil {
		return err
	}
	if _, err := io.ReadFull(c.tcp, hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(c.tcp, buf); err != nil {
		return err
	}
	var env v1Envelope
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&env); err != nil {
		return err
	}
	if env.Kind == wire.KindError {
		return errors.New("v1: server error response")
	}
	return gob.NewDecoder(bytes.NewReader(env.Data)).Decode(resp)
}

func TestV1ClientAgainstV2Server(t *testing.T) {
	srv := startServer(t)
	cc := newCoreClient(t, nil)
	v1 := dialV1(t, srv.Addr())

	var ack wire.Ack
	if err := v1.roundTrip(wire.KindCreateRepo, wire.CreateRepoReq{RepoID: "legacy", Opts: smallOpts()}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err != "" {
		t.Fatalf("create: %s", ack.Err)
	}
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 3; i++ {
			obj := &core.Object{
				ID:    fmt.Sprintf("v1-c%d-%d", cls, i),
				Owner: "alice",
				Text:  []string{"beach sand ocean", "mountain snow peaks"}[cls],
				Image: classImage(cls, int64(i)),
			}
			up, err := cc.PrepareUpdate(obj, dataKey())
			if err != nil {
				t.Fatal(err)
			}
			ack = wire.Ack{}
			if err := v1.roundTrip(wire.KindUpdate, wire.UpdateReq{RepoID: "legacy", Update: *up}, &ack); err != nil {
				t.Fatal(err)
			}
			if ack.Err != "" {
				t.Fatalf("update: %s", ack.Err)
			}
		}
	}
	// v1 Train is synchronous: the ack arrives only once training completed.
	ack = wire.Ack{}
	if err := v1.roundTrip(wire.KindTrain, wire.TrainReq{RepoID: "legacy"}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err != "" {
		t.Fatalf("train: %s", ack.Err)
	}
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "mountain peaks", Image: classImage(1, 99)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sr wire.SearchResp
	if err := v1.roundTrip(wire.KindSearch, wire.SearchReq{RepoID: "legacy", Query: *q}, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Err != "" {
		t.Fatalf("search: %s", sr.Err)
	}
	if len(sr.Hits) == 0 {
		t.Fatal("v1 search found nothing")
	}
	var gr wire.GetResp
	if err := v1.roundTrip(wire.KindGet, wire.GetReq{RepoID: "legacy", ObjectID: sr.Hits[0].ObjectID}, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Err != "" || gr.Owner != "alice" {
		t.Fatalf("get: err=%q owner=%q", gr.Err, gr.Owner)
	}
}

// ---------------------------------------------------------------------------
// v2 behavior over the real server.
// ---------------------------------------------------------------------------

// seedRepo creates a repository with a handful of trained-searchable objects.
func seedRepo(t *testing.T, conn *client.Conn, cc *core.Client, repoID string) {
	t.Helper()
	if err := conn.CreateRepository(testCtx, repoID, smallOpts()); err != nil {
		t.Fatal(err)
	}
	topics := []string{"beach sand ocean", "mountain snow peaks", "city night lights"}
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 3; i++ {
			obj := &core.Object{
				ID:    fmt.Sprintf("%s-c%d-%d", repoID, cls, i),
				Owner: "alice",
				Text:  topics[cls],
				Image: classImage(cls, int64(i)),
			}
			up, err := cc.PrepareUpdate(obj, dataKey())
			if err != nil {
				t.Fatal(err)
			}
			if err := conn.Update(testCtx, repoID, up); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAsyncTrainJobOverWire(t *testing.T) {
	srv := startServer(t)
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)
	seedRepo(t, conn, cc, "async")

	job, err := conn.TrainStart(testCtx, "async")
	if err != nil {
		t.Fatal(err)
	}
	if job.JobID == 0 {
		t.Fatal("job id must be nonzero")
	}
	// Status is queryable while or after the job runs.
	if _, err := conn.TrainStatus(testCtx, "async", job.JobID); err != nil {
		t.Fatal(err)
	}
	final, err := conn.TrainWait(testCtx, "async", job.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != string(core.TrainDone) || final.Epoch != 1 {
		t.Fatalf("final status = %+v", final)
	}
	// The trained index serves queries.
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "mountain peaks"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := conn.Search(testCtx, "async", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("search after async train found nothing")
	}
	// Unknown jobs are an application error, not a transport one.
	if _, err := conn.TrainStatus(testCtx, "async", 9999); err == nil ||
		!strings.Contains(err.Error(), "unknown train job") {
		t.Errorf("unknown job err = %v", err)
	}
}

func TestTrainWaitDeadlineReportsRunning(t *testing.T) {
	srv := startServer(t)
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)
	seedRepo(t, conn, cc, "waitdl")

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	core.SetTrainInstallHookForTest(func() {
		entered <- struct{}{}
		<-release
	})
	t.Cleanup(func() { core.SetTrainInstallHookForTest(nil) })
	t.Cleanup(func() { close(release) })

	job, err := conn.TrainStart(testCtx, "waitdl")
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	// The wait deadline lapses while the job still runs: the server reports
	// the running status instead of failing the request.
	ctx, cancel := context.WithTimeout(testCtx, 100*time.Millisecond)
	defer cancel()
	st, err := conn.TrainWait(ctx, "waitdl", job.JobID)
	if err == nil {
		if st.State != string(core.TrainRunning) {
			t.Errorf("state = %q, want running", st.State)
		}
	} else if !errors.Is(err, context.DeadlineExceeded) {
		// The client's own context may win the race against the server's
		// running-status reply; either outcome is acceptable, other errors
		// are not.
		t.Errorf("bounded TrainWait: %v", err)
	}
}

func TestExpiredSearchReturnsPromptlyDuringTrain(t *testing.T) {
	// The acceptance scenario: a Train job is in flight on the same
	// connection, and a Search whose context is already expired returns
	// immediately — no RPC is blocked behind training.
	srv := startServer(t)
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)
	seedRepo(t, conn, cc, "busy")

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	core.SetTrainInstallHookForTest(func() {
		entered <- struct{}{}
		<-release
	})
	t.Cleanup(func() { core.SetTrainInstallHookForTest(nil) })

	job, err := conn.TrainStart(testCtx, "busy")
	if err != nil {
		t.Fatal(err)
	}
	<-entered // training is provably in flight, parked before its epoch swap

	expired, cancel := context.WithTimeout(testCtx, time.Nanosecond)
	defer cancel()
	<-expired.Done()
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "mountain peaks"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conn.Search(expired, "busy", q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired search err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("expired search took %v, want prompt return", d)
	}
	// A live Search on the SAME connection is served while the Train job
	// still runs — the mux at work.
	hits, err := conn.Search(testCtx, "busy", q)
	if err != nil {
		t.Fatalf("search during train job: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("search during train job found nothing")
	}
	close(release)
	if st, err := conn.TrainWait(testCtx, "busy", job.JobID); err != nil || st.State != string(core.TrainDone) {
		t.Fatalf("train job completion: %+v, %v", st, err)
	}
}

func TestCancelMidSearchObservedByServer(t *testing.T) {
	// Acceptance: canceling a context mid-Search aborts the wait client-side
	// and emits a Cancel frame the server observes — asserted via the
	// server's obs counters.
	reg := obs.NewRegistry()
	srv, err := New("127.0.0.1:0", memSvc(t), nil, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)
	seedRepo(t, conn, cc, "cancelme")
	if err := conn.Train(testCtx, "cancelme"); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	core.SetSearchStartHookForTest(func() {
		entered <- struct{}{}
		<-release
	})
	t.Cleanup(func() { core.SetSearchStartHookForTest(nil) })
	t.Cleanup(func() { close(release) })

	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "mountain peaks"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(testCtx)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Search(ctx, "cancelme", q)
		done <- err
	}()
	<-entered // the search is held inside the engine
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled search returned %v, want context.Canceled", err)
	}
	// The cancel frame reaches the server asynchronously; both counters must
	// move — the frame arrived, and it named a request still in flight.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("server_cancel_frames_total").Value() >= 1 &&
			reg.Counter("server_cancel_hits_total").Value() >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("server_cancel_frames_total").Value(); got < 1 {
		t.Errorf("server_cancel_frames_total = %d, want >= 1", got)
	}
	if got := reg.Counter("server_cancel_hits_total").Value(); got < 1 {
		t.Errorf("server_cancel_hits_total = %d, want >= 1 (cancel must name an in-flight request)", got)
	}
}

func TestHelloNegotiatesV2(t *testing.T) {
	srv := startServer(t)
	conn := dial(t, srv, nil)
	if got := conn.Protocol(); got != wire.ProtocolV2 {
		t.Errorf("negotiated protocol = %d, want v2", got)
	}
	// Forced lockstep still works against the v2 server.
	ls, err := client.Dial(srv.Addr(), nil, client.WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ls.Close() })
	if got := ls.Protocol(); got != wire.ProtocolV1 {
		t.Errorf("lockstep protocol = %d, want v1", got)
	}
	if err := ls.CreateRepository(testCtx, "ls", smallOpts()); err != nil {
		t.Fatal(err)
	}
}
