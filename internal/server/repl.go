// Replication and forwarding seams of the server. The server owns the
// interfaces and internal/replica implements them, so the dependency points
// replica -> server-less wire/core and no import cycle forms: a leader is a
// Server with a ReplicationSource, a follower is a Server with a Forwarder,
// and both are plain servers to their clients.
package server

import (
	"context"
	"errors"

	"mie/internal/wire"
)

// ReplicationSource streams a service's acknowledged mutation records to
// followers — the leader half of WAL-shipping replication (implemented by
// replica.Hub).
type ReplicationSource interface {
	// Subscribe streams records for req's stream through send until ctx is
	// canceled or the stream fails; send's error (the peer went away) also
	// ends it. Subscribe runs on the request's handler goroutine.
	Subscribe(ctx context.Context, req wire.ReplSubscribeReq, send func(*wire.ReplRecords) error) error
	// Ack records a follower's applied cursor (fire-and-forget).
	Ack(ack wire.ReplAck)
}

// Forwarder relays requests this node cannot serve locally to the leader —
// the follower half (implemented by replica.Forwarder). It returns the
// leader's raw response envelope, relayed to the origin client verbatim.
type Forwarder interface {
	Forward(ctx context.Context, env *wire.Envelope) (*wire.Envelope, error)
}

// NodeStatus is what a node reports about its replication role in the
// HelloResp handshake; the router's health probe keys failover on it.
type NodeStatus struct {
	// Role is "leader", "follower" or empty (replication not enabled).
	Role string
	// CaughtUp reports a follower connected to its leader with nothing
	// received but unapplied.
	CaughtUp bool
	// Lag is the follower's last observed replication lag in nanoseconds.
	LagNanos int64
}

// WithReplication makes the server a replication leader: repl-subscribe
// requests stream records from src and repl-ack frames feed its cursor
// accounting.
func WithReplication(src ReplicationSource) Option {
	return func(s *Server) { s.repl = src }
}

// WithForwarder makes the server a follower for mutations: every mutating
// or training request is relayed through f to the leader and the leader's
// response relayed back; reads keep being served locally.
func WithForwarder(f Forwarder) Option {
	return func(s *Server) { s.forward = f }
}

// WithNodeStatus installs the status callback whose result rides on every
// HelloResp.
func WithNodeStatus(fn func() NodeStatus) Option {
	return func(s *Server) { s.nodeStatus = fn }
}

// forwarded reports whether a request kind must be answered by the leader:
// everything that mutates state or touches the leader-resident training job
// table. Reads (Search/Get/TraceGet) stay local — serving them from
// follower replicas is the point of read scale-out.
func forwarded(kind string) bool {
	switch kind {
	case wire.KindCreateRepo, wire.KindTrain, wire.KindTrainStart,
		wire.KindTrainStatus, wire.KindTrainWait, wire.KindUpdate,
		wire.KindRemove:
		return true
	}
	return false
}

// forwardRequest relays one request envelope to the leader and the leader's
// response back to the origin client, preserving the request's Auth (the
// leader authorizes the origin caller, not this node).
func (s *Server) forwardRequest(ctx context.Context, cs *connState, env *wire.Envelope) error {
	resp, err := s.forward.Forward(ctx, env)
	if err != nil {
		s.countOpError(env.Kind, err)
		n, werr := cs.write(env.ID, wire.KindError, wire.Ack{Err: "forward to leader: " + err.Error()})
		s.met.txBytes.Add(int64(n))
		return werr
	}
	n, werr := cs.writeEnv(env.ID, resp)
	s.met.txBytes.Add(int64(n))
	return werr
}

// handleReplSubscribe runs one replication stream on its handler goroutine:
// records flow from the source to the peer as repl-records frames echoing
// the subscribe ID, until the context (connection teardown, Cancel frame)
// or the stream ends. A stream error that was not a teardown is reported to
// the peer as a terminal error frame.
func (s *Server) handleReplSubscribe(ctx context.Context, cs *connState, env *wire.Envelope) error {
	var req wire.ReplSubscribeReq
	err := env.Decode(&req)
	if err == nil && s.repl == nil {
		err = errors.New("server: replication not enabled on this node")
	}
	if err == nil && env.ID == 0 {
		err = errors.New("server: repl-subscribe requires protocol v2")
	}
	if err == nil {
		err = s.repl.Subscribe(ctx, req, func(batch *wire.ReplRecords) error {
			n, werr := cs.write(env.ID, wire.KindReplRecords, batch)
			s.met.txBytes.Add(int64(n))
			return werr
		})
	}
	if err == nil || ctx.Err() != nil || s.isClosed() {
		return nil
	}
	s.countOpError(env.Kind, err)
	code, _ := wire.ErrCode(err)
	n, werr := cs.write(env.ID, wire.KindReplRecords, &wire.ReplRecords{
		Err:    err.Error(),
		Code:   code,
		RepoID: req.RepoID,
	})
	s.met.txBytes.Add(int64(n))
	return werr
}

// helloResp builds the handshake response, including this node's
// replication status when configured.
func (s *Server) helloResp() wire.HelloResp {
	hr := wire.HelloResp{Version: wire.ProtocolV2}
	if s.nodeStatus != nil {
		st := s.nodeStatus()
		hr.Role = st.Role
		hr.CaughtUp = st.CaughtUp
		hr.LagNanos = st.LagNanos
	}
	return hr
}
