package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mie/internal/auth"
	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/leakcheck"
	"mie/internal/wire"
)

var testCtx = context.Background()

func repoKey() core.RepositoryKey {
	var k crypto.Key
	k[0] = 3
	return core.RepositoryKey{Master: k}
}

func dataKey() crypto.Key {
	var k crypto.Key
	k[0] = 4
	return k
}

func newCoreClient(t *testing.T, meter *device.Meter) *core.Client {
	t.Helper()
	c, err := core.NewClient(core.ClientConfig{
		Key:     repoKey(),
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 256, Threshold: 0.5},
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
		Meter:   meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func classImage(class int, instance int64) *imaging.Image {
	base := rand.New(rand.NewSource(int64(class) * 1000))
	noise := rand.New(rand.NewSource(instance + int64(class)*7919 + 1))
	im, err := imaging.NewImage(32, 32)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	for i := range im.Pix {
		im.Pix[i] = base.Float64()*0.9 + noise.Float64()*0.1
	}
	return im
}

// memSvc opens an in-memory service via the unified constructor.
func memSvc(t testing.TB) *core.Service {
	t.Helper()
	svc, _, err := core.OpenService(core.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New("127.0.0.1:0", memSvc(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	})
	return srv
}

func dial(t *testing.T, srv *Server, meter *device.Meter) *client.Conn {
	t.Helper()
	conn, err := client.Dial(srv.Addr(), meter)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func smallOpts() wire.RepoOptions {
	return wire.RepoOptions{VocabWords: 20, VocabMaxIter: 10, TreeBranch: 3, TreeHeight: 2, TreeSeed: 1}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("127.0.0.1:0", nil, nil); err == nil {
		t.Error("expected error for nil service")
	}
	if _, err := New("256.0.0.1:99999", memSvc(t), nil); err == nil {
		t.Error("expected error for bad address")
	}
}

func TestEndToEndFlow(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t)
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)

	if err := conn.CreateRepository(testCtx, "photos", smallOpts()); err != nil {
		t.Fatal(err)
	}
	if err := conn.CreateRepository(testCtx, "photos", smallOpts()); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate create err = %v", err)
	}

	// Upload a few multimodal objects.
	topics := []string{"beach sand ocean", "mountain snow peaks", "city night lights"}
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 4; i++ {
			obj := &core.Object{
				ID:    fmt.Sprintf("net-c%d-%d", cls, i),
				Owner: "alice",
				Text:  topics[cls],
				Image: classImage(cls, int64(i)),
			}
			up, err := cc.PrepareUpdate(obj, dataKey())
			if err != nil {
				t.Fatal(err)
			}
			if err := conn.Update(testCtx, "photos", up); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Train in the cloud.
	if err := conn.Train(testCtx, "photos"); err != nil {
		t.Fatal(err)
	}

	// Search across the network.
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "mountain peaks", Image: classImage(1, 99)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := conn.Search(testCtx, "photos", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("network search found nothing")
	}
	same := 0
	for _, h := range hits {
		if strings.HasPrefix(h.ObjectID, "net-c1-") {
			same++
		}
	}
	if same < 2 {
		t.Errorf("only %d/%d hits from query class: %+v", same, len(hits), hits)
	}

	// Fetch and decrypt one object.
	ct, owner, err := conn.Get(testCtx, "photos", hits[0].ObjectID)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "alice" {
		t.Errorf("owner = %q", owner)
	}
	obj, err := core.DecryptObject(ct, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if obj.ID != hits[0].ObjectID {
		t.Errorf("decrypted id %q != %q", obj.ID, hits[0].ObjectID)
	}

	// Remove then verify gone.
	if err := conn.Remove(testCtx, "photos", hits[0].ObjectID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Get(testCtx, "photos", hits[0].ObjectID); err == nil {
		t.Error("removed object still retrievable")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	srv := startServer(t)
	conn := dial(t, srv, nil)
	if err := conn.Train(testCtx, "missing-repo"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("train on missing repo: err = %v", err)
	}
	if _, err := conn.Search(testCtx, "missing-repo", &core.Query{K: 3}); err == nil {
		t.Error("search on missing repo should fail")
	}
	if _, _, err := conn.Get(testCtx, "missing-repo", "x"); err == nil {
		t.Error("get on missing repo should fail")
	}
}

func TestConcurrentClientsSharedRepository(t *testing.T) {
	leakcheck.Check(t)
	// The Figure 4 scenario over real sockets: two independent connections
	// (a "mobile" and a "desktop" user) write to the same repository
	// concurrently and both make progress.
	srv := startServer(t)
	connA := dial(t, srv, nil)
	connB := dial(t, srv, nil)
	cc := newCoreClient(t, nil)

	if err := connA.CreateRepository(testCtx, "shared", smallOpts()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	upload := func(conn *client.Conn, user string) {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			obj := &core.Object{
				ID:    fmt.Sprintf("%s-%d", user, i),
				Owner: user,
				Text:  fmt.Sprintf("shared content item %d from %s", i, user),
			}
			up, err := cc.PrepareUpdate(obj, dataKey())
			if err != nil {
				errs <- err
				return
			}
			if err := conn.Update(testCtx, "shared", up); err != nil {
				errs <- err
				return
			}
		}
	}
	wg.Add(2)
	go upload(connA, "mobile")
	go upload(connB, "desktop")
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "shared content item"}, 40)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := connA.Search(testCtx, "shared", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 40 {
		t.Errorf("got %d objects from both writers, want 40", len(hits))
	}
}

func TestMeterAccountsNetworkBytes(t *testing.T) {
	srv := startServer(t)
	meter := device.NewMeter(device.Mobile)
	conn := dial(t, srv, meter)
	cc := newCoreClient(t, nil)
	if err := conn.CreateRepository(testCtx, "m", smallOpts()); err != nil {
		t.Fatal(err)
	}
	obj := &core.Object{ID: "o", Owner: "u", Text: "metered upload", Image: classImage(0, 0)}
	up, err := cc.PrepareUpdate(obj, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Update(testCtx, "m", up); err != nil {
		t.Fatal(err)
	}
	upB, _ := meter.Bytes(device.Network)
	if upB == 0 {
		t.Error("no upload bytes accounted")
	}
	if meter.RoundTrips(device.Network) != 2 {
		t.Errorf("round trips = %d, want 2 (create + update)", meter.RoundTrips(device.Network))
	}
}

func TestMalformedFrameClosesConnection(t *testing.T) {
	srv := startServer(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Oversized length prefix: server must drop the connection, not crash.
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := raw.Read(buf); err == nil {
		t.Error("expected connection close after oversized frame")
	}
	// Server still serves new connections.
	conn := dial(t, srv, nil)
	if err := conn.CreateRepository(testCtx, "after", smallOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKindGetsErrorResponse(t *testing.T) {
	srv := startServer(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := wire.WriteFrame(raw, "bogus-kind", wire.Ack{}); err != nil {
		t.Fatal(err)
	}
	env, _, err := wire.ReadFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != wire.KindError {
		t.Errorf("kind = %s, want error", env.Kind)
	}
}

func TestCloseIdempotent(t *testing.T) {
	leakcheck.Check(t)
	srv, err := New("127.0.0.1:0", memSvc(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestAuthorizerGatesRequests(t *testing.T) {
	var masterAuth crypto.Key
	masterAuth[0] = 42
	authority := auth.NewAuthority(masterAuth)
	svc := memSvc(t)
	srv, err := New("127.0.0.1:0", svc, nil, WithAuthorizer(func(repoID, token string) error {
		return authority.VerifyString(token, repoID)
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	conn := dial(t, srv, nil)

	// No token: everything is denied.
	if err := conn.CreateRepository(testCtx, "locked", smallOpts()); err == nil {
		t.Fatal("unauthenticated create succeeded")
	}

	// Valid token admits the holder.
	tok, err := authority.Issue("alice", "locked", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetToken(tok.Encode())
	if err := conn.CreateRepository(testCtx, "locked", smallOpts()); err != nil {
		t.Fatalf("authorized create failed: %v", err)
	}
	cc := newCoreClient(t, nil)
	up, err := cc.PrepareUpdate(&core.Object{ID: "o", Owner: "alice", Text: "private payload"}, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Update(testCtx, "locked", up); err != nil {
		t.Fatalf("authorized update failed: %v", err)
	}

	// A token for a different repository is rejected.
	other, err := authority.Issue("alice", "other-repo", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	conn2 := dial(t, srv, nil)
	conn2.SetToken(other.Encode())
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "private"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Search(testCtx, "locked", q); err == nil ||
		!strings.Contains(err.Error(), "different repository") {
		t.Errorf("cross-repo token: err = %v", err)
	}

	// Revocation takes effect immediately.
	authority.Revoke(tok)
	if err := conn.Train(testCtx, "locked"); err == nil || !strings.Contains(err.Error(), "revoked") {
		t.Errorf("revoked token still admitted: err = %v", err)
	}
}

func TestSearchServedWhileTrainRPCInFlight(t *testing.T) {
	// The layered engine's non-blocking guarantee, observed from outside
	// the process boundary: a Train RPC is held at its install point while
	// a second connection searches, updates, and fetches — all of which
	// must complete before training does.
	srv := startServer(t)
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)

	if err := conn.CreateRepository(testCtx, "live", smallOpts()); err != nil {
		t.Fatal(err)
	}
	topics := []string{"beach sand ocean", "mountain snow peaks", "city night lights"}
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 3; i++ {
			obj := &core.Object{
				ID:    fmt.Sprintf("live-c%d-%d", cls, i),
				Owner: "alice",
				Text:  topics[cls],
				Image: classImage(cls, int64(i)),
			}
			up, err := cc.PrepareUpdate(obj, dataKey())
			if err != nil {
				t.Fatal(err)
			}
			if err := conn.Update(testCtx, "live", up); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := conn.Train(testCtx, "live"); err != nil {
		t.Fatal(err)
	}

	// Park the NEXT train right before its epoch swap.
	reached := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	core.SetTrainInstallHookForTest(func() {
		once.Do(func() { close(reached) })
		<-gate
	})
	t.Cleanup(func() { core.SetTrainInstallHookForTest(nil) })

	trainDone := make(chan error, 1)
	go func() { trainDone <- conn.Train(testCtx, "live") }()
	<-reached

	// A separate connection's requests are served while the Train RPC is
	// provably still in flight.
	conn2 := dial(t, srv, nil)
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "mountain peaks"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := conn2.Search(testCtx, "live", q)
	if err != nil {
		t.Fatalf("search during train RPC: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("search during train RPC found nothing")
	}
	up, err := cc.PrepareUpdate(&core.Object{ID: "live-mid", Owner: "alice", Text: "mountain peaks climbing"}, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn2.Update(testCtx, "live", up); err != nil {
		t.Fatalf("update during train RPC: %v", err)
	}
	if _, _, err := conn2.Get(testCtx, "live", hits[0].ObjectID); err != nil {
		t.Fatalf("get during train RPC: %v", err)
	}
	select {
	case err := <-trainDone:
		t.Fatalf("train RPC finished before gate released (err=%v)", err)
	default:
	}

	close(gate)
	if err := <-trainDone; err != nil {
		t.Fatalf("train: %v", err)
	}
	// The mid-train update survived the epoch swap via changelog replay.
	hits, err = conn2.Search(testCtx, "live", q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.ObjectID == "live-mid" {
			found = true
		}
	}
	if !found {
		t.Errorf("mid-train update missing after swap: %+v", hits)
	}
}
