package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/leakcheck"
	"mie/internal/obs"
)

// TestTracePropagatesEndToEnd drives one traced search through a real TCP
// round trip and asserts the acceptance property of the tracing subsystem:
// client and server report the SAME TraceID, the server's span fragment
// nests under the client's operation span, and the merged tree contains the
// client op, the server dispatch and the per-modality engine lookup.
func TestTracePropagatesEndToEnd(t *testing.T) {
	leakcheck.Check(t)

	srvTracer := obs.NewTracer(obs.NewRegistry(), 64)
	cliTracer := obs.NewTracer(obs.NewRegistry(), 64)

	srv, err := New("127.0.0.1:0", memSvc(t), nil, WithTracer(srvTracer))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	conn, err := client.Dial(srv.Addr(), nil, client.WithTracer(cliTracer))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })

	cc := newCoreClient(t, nil)
	if err := conn.CreateRepository(testCtx, "r", smallOpts()); err != nil {
		t.Fatal(err)
	}
	obj := &core.Object{ID: "o1", Text: "beach sunset", Image: classImage(1, 1)}
	up, err := cc.PrepareUpdate(obj, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Update(testCtx, "r", up); err != nil {
		t.Fatal(err)
	}
	if err := conn.Train(testCtx, "r"); err != nil {
		t.Fatal(err)
	}

	// Force a client-originated trace around one search, the way
	// mie-client -trace does.
	ctx, at := cliTracer.ForceTrace(context.Background())
	ctx, rootSp := obs.StartSpan(ctx, obs.NewRegistry(), "cli/search")
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "beach"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Search(ctx, "r", q); err != nil {
		t.Fatal(err)
	}
	rootSp.End()
	local := at.Finish()
	if local == nil {
		t.Fatal("client trace not kept")
	}

	// The server publishes its fragment after writing the response; fetch it
	// back over the wire with a brief retry, as the CLI does.
	var remote *obs.Trace
	deadline := time.Now().Add(2 * time.Second)
	for {
		remote, err = conn.FetchTrace(context.Background(), local.TraceID)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("fetch server trace: %v", err)
	}
	if remote.TraceID != local.TraceID {
		t.Fatalf("trace ids differ: client %x server %x", local.TraceID, remote.TraceID)
	}

	// The client fragment: cli/search root, op/search child.
	spanID := map[string]uint64{}
	parent := map[string]uint64{}
	for _, s := range local.Spans {
		spanID[s.Name], parent[s.Name] = s.SpanID, s.ParentID
	}
	if parent["cli/search"] != 0 {
		t.Errorf("cli/search has parent %x", parent["cli/search"])
	}
	if parent["op/search"] != spanID["cli/search"] {
		t.Error("op/search not parented under cli/search")
	}

	// The server fragment: rpc/search parented under the client's op/search
	// span (remote parent linkage), engine phases nested below.
	for _, s := range remote.Spans {
		spanID[s.Name], parent[s.Name] = s.SpanID, s.ParentID
	}
	if parent["rpc/search"] != spanID["op/search"] {
		t.Errorf("rpc/search parents under %x, want client op span %x",
			parent["rpc/search"], spanID["op/search"])
	}
	if parent["rpc/search/engine"] != spanID["rpc/search"] {
		t.Error("engine span not nested under server dispatch")
	}
	if parent["repo/search"] != spanID["rpc/search/engine"] {
		t.Error("core search span not nested under engine span")
	}
	found := false
	for name := range spanID {
		if strings.HasPrefix(name, "repo/search/") && strings.HasSuffix(name, "_lookup") {
			found = true
			if parent[name] != spanID["repo/search"] {
				t.Errorf("%s not nested under repo/search", name)
			}
		}
	}
	if !found {
		t.Errorf("no per-modality lookup span in server fragment: %v", keys(spanID))
	}

	// Rendering the merged tree must produce one connected trace: exactly one
	// top-level root.
	tree := obs.RenderTraceTree(local, remote)
	if !strings.Contains(tree, "└─ cli/search") || strings.Count(tree, "\n└─")+strings.Count(tree, ")\n└─") < 1 {
		t.Errorf("merged tree lacks single client root:\n%s", tree)
	}
	if !strings.Contains(tree, "rpc/search") {
		t.Errorf("merged tree lacks server fragment:\n%s", tree)
	}
}

func keys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
