package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/wire"
)

// metricValue extracts the value of one exact metric line from a plain-text
// exposition body; -1 if absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

func TestAuthorizerDeniesEveryKind(t *testing.T) {
	reg := obs.NewRegistry()
	deny := func(repoID, token string) error { return errors.New("denied: no token") }
	srv, err := New("127.0.0.1:0", memSvc(t), nil, WithAuthorizer(deny), WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)

	if err := conn.CreateRepository(testCtx, "locked", smallOpts()); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("create-repo deny: err = %v", err)
	}
	if err := conn.Train(testCtx, "locked"); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("train deny: err = %v", err)
	}
	up, err := cc.PrepareUpdate(&core.Object{ID: "o", Owner: "eve", Text: "secret"}, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Update(testCtx, "locked", up); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("update deny: err = %v", err)
	}
	if err := conn.Remove(testCtx, "locked", "o"); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("remove deny: err = %v", err)
	}
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "secret"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Search(testCtx, "locked", q); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("search deny: err = %v", err)
	}
	if _, _, err := conn.Get(testCtx, "locked", "o"); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("get deny: err = %v", err)
	}

	if got := reg.Counter("server_authz_denials_total").Value(); got != 6 {
		t.Errorf("authz denials = %d, want 6", got)
	}
	for _, kind := range []string{wire.KindCreateRepo, wire.KindTrain, wire.KindUpdate, wire.KindRemove, wire.KindSearch, wire.KindGet} {
		if got := reg.Counter(obs.L("server_request_errors_total", "kind", kind)).Value(); got != 1 {
			t.Errorf("error counter for %s = %d, want 1", kind, got)
		}
	}
}

func TestUnknownKindErrorResponseBody(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := New("127.0.0.1:0", memSvc(t), nil, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := wire.WriteFrame(raw, "bogus-kind", wire.Ack{}); err != nil {
		t.Fatal(err)
	}
	env, _, err := wire.ReadFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != wire.KindError {
		t.Fatalf("kind = %s, want %s", env.Kind, wire.KindError)
	}
	var ack wire.Ack
	if err := env.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ack.Err, "unknown kind: bogus-kind") {
		t.Errorf("error body = %q", ack.Err)
	}
	if got := reg.Counter(obs.L("server_request_errors_total", "kind", "bogus-kind")).Value(); got != 1 {
		t.Errorf("unknown-kind error counter = %d, want 1", got)
	}
	// The connection stays usable after an unknown kind (one error response,
	// no abort).
	if _, err := wire.WriteFrame(raw, wire.KindTrain, wire.TrainReq{RepoID: "missing"}); err != nil {
		t.Fatal(err)
	}
	if env, _, err = wire.ReadFrame(raw); err != nil || env.Kind != wire.KindAck {
		t.Errorf("follow-up request after unknown kind: env=%v err=%v", env, err)
	}
}

func TestMalformedFramesCountedDistinctly(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := New("127.0.0.1:0", memSvc(t), nil, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// Garbage bytes behind a valid length prefix: gob decode fails.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Error("expected connection close after garbage frame")
	}

	// Oversized length prefix is also malformed, not a read error.
	raw2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	if _, err := raw2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := raw2.Read(make([]byte, 1)); err == nil {
		t.Error("expected connection close after oversized frame")
	}

	// A clean disconnect must not move either abort counter.
	raw3, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_ = raw3.Close()

	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("server_malformed_frames_total").Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("server_malformed_frames_total").Value(); got != 2 {
		t.Errorf("malformed frames = %d, want 2", got)
	}
	if got := reg.Counter("server_read_errors_total").Value(); got != 0 {
		t.Errorf("read errors = %d, want 0 (malformed and EOF are not read errors)", got)
	}
}

// flakyListener fails Accept a fixed number of times, then hands out queued
// connections, then blocks until closed — the EMFILE-under-load shape.
type flakyListener struct {
	mu     sync.Mutex
	fails  int
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fails > 0 {
		l.fails--
		l.mu.Unlock()
		return nil, errors.New("accept tcp: too many open files")
	}
	l.mu.Unlock()
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *flakyListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	reg := obs.NewRegistry()
	fl := &flakyListener{fails: 3, conns: make(chan net.Conn, 1), closed: make(chan struct{})}
	s := &Server{
		svc:    memSvc(t),
		logger: obs.Nop(),
		reg:    reg,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	s.initMetrics()
	s.listener = fl
	s.wg.Add(1)
	go s.acceptLoop()

	// The loop must survive the transient errors and still serve the
	// connection queued behind them.
	srvEnd, cliEnd := net.Pipe()
	fl.conns <- srvEnd
	done := make(chan error, 1)
	go func() {
		if _, err := wire.WriteFrame(cliEnd, wire.KindTrain, wire.TrainReq{RepoID: "missing"}); err != nil {
			done <- err
			return
		}
		env, _, err := wire.ReadFrame(cliEnd)
		if err == nil && env.Kind != wire.KindAck {
			err = fmt.Errorf("kind = %s, want ack", env.Kind)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("round trip after accept errors: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop never served the connection: it likely exited on a transient error")
	}
	if got := reg.Counter("server_accept_errors_total").Value(); got != 3 {
		t.Errorf("accept errors = %d, want 3", got)
	}
	_ = cliEnd.Close()
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestMetricsEndpointReflectsSearchRoundTrip(t *testing.T) {
	// The acceptance-criteria flow: a served Update+Train+Search sequence
	// must be visible on /metrics — per-kind request counters, latency
	// histogram counts and train/index/search phase timings. The server and
	// engine record into the process-wide default registry, which is what
	// mie-server's -debug-addr endpoint exposes.
	srv := startServer(t)
	dbg, err := obs.ServeDebug("127.0.0.1:0", obs.Default(), obs.Nop())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dbg.Close() })

	conn := dial(t, srv, nil)
	cc := newCoreClient(t, nil)
	// The registry is process-global and other tests legitimately provoke
	// search errors, so assert the error counter over this flow only.
	searchErrs0 := obs.Default().Counter(obs.L("server_request_errors_total", "kind", "search")).Value()
	if err := conn.CreateRepository(testCtx, "metrics-e2e", smallOpts()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		obj := &core.Object{
			ID:    fmt.Sprintf("m-%d", i),
			Owner: "alice",
			Text:  "observable beach sunset",
			Image: classImage(0, int64(i)),
		}
		up, err := cc.PrepareUpdate(obj, dataKey())
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Update(testCtx, "metrics-e2e", up); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Train(testCtx, "metrics-e2e"); err != nil {
		t.Fatal(err)
	}
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "beach sunset"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Search(testCtx, "metrics-e2e", q); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + dbg.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, name := range []string{
		`server_requests_total{kind="search"}`,
		`server_requests_total{kind="update"}`,
		`server_requests_total{kind="train"}`,
		`server_request_seconds_count{kind="search"}`,
		`server_rx_bytes_total`,
		`server_tx_bytes_total`,
		`phase_seconds_count{phase="rpc/search/decode"}`,
		`phase_seconds_count{phase="rpc/search/engine"}`,
		`phase_seconds_count{phase="repo/train"}`,
		`phase_seconds_count{phase="repo/train/build_indexes"}`,
		`phase_seconds_count{phase="repo/search"}`,
		`phase_seconds_count{phase="repo/search/fusion"}`,
		`phase_seconds_count{phase="repo/update"}`,
		`repo_objects{repo="metrics-e2e"}`,
	} {
		if v := metricValue(body, name); v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, v)
		}
	}
	// No request failed in this flow.
	searchErrs := obs.Default().Counter(obs.L("server_request_errors_total", "kind", "search")).Value()
	if d := searchErrs - searchErrs0; d > 0 {
		t.Errorf("search errors grew by %d during this flow, want 0", d)
	}
}
