// Package server exposes the MIE cloud component (core.Service) over TCP
// using the wire protocol: the "MIE Server Component (as a Service)" box of
// Figure 1. Each accepted connection is served by its own goroutine; the
// underlying engine is already safe for the concurrent multi-user access
// the system model requires.
//
// The server is fully instrumented: per-kind request/error counters, an
// in-flight gauge, wire-level byte counters, per-kind latency histograms and
// rpc/<kind>/<phase> spans (decode -> authorize -> engine -> reply) all land
// in an obs.Registry, so the cloud half of the paper's latency breakdowns is
// observable on live traffic via the -debug-addr endpoint.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/wire"
)

// Authorizer decides whether a request carrying the given bearer token may
// act on a repository (see internal/auth for the token scheme). A nil
// authorizer admits everything (the single-trust-domain deployments of the
// examples).
type Authorizer func(repoID, token string) error

// Option customizes a Server.
type Option func(*Server)

// WithAuthorizer installs request authorization.
func WithAuthorizer(a Authorizer) Option {
	return func(s *Server) { s.authorize = a }
}

// WithObservability records the server's metrics into reg instead of the
// process-wide obs.Default() registry.
func WithObservability(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// Accept-retry backoff bounds: transient Accept errors (e.g. EMFILE when the
// process runs out of file descriptors under load) must not kill the accept
// loop; they are retried with capped exponential backoff.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// serverMetrics caches the hot metric handles so the per-request path does
// only atomic increments, no registry lookups.
type serverMetrics struct {
	acceptErrors *obs.Counter
	connsOpened  *obs.Counter
	connsActive  *obs.Gauge
	inflight     *obs.Gauge
	rxBytes      *obs.Counter
	txBytes      *obs.Counter
	malformed    *obs.Counter
	readErrors   *obs.Counter
}

// Server hosts a core.Service on a TCP listener.
type Server struct {
	svc       *core.Service
	listener  net.Listener
	logger    *obs.Logger
	authorize Authorizer
	reg       *obs.Registry
	met       serverMetrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// New starts a server listening on addr (e.g. "127.0.0.1:0"). A nil logger
// discards logs.
func New(addr string, svc *core.Service, logger *obs.Logger, opts ...Option) (*Server, error) {
	if svc == nil {
		return nil, errors.New("server: nil service")
	}
	if logger == nil {
		logger = obs.Nop()
	}
	s := &Server{
		svc:    svc,
		logger: logger,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.initMetrics()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *Server) initMetrics() {
	s.met = serverMetrics{
		acceptErrors: s.reg.Counter("server_accept_errors_total"),
		connsOpened:  s.reg.Counter("server_connections_total"),
		connsActive:  s.reg.Gauge("server_connections_active"),
		inflight:     s.reg.Gauge("server_inflight_requests"),
		rxBytes:      s.reg.Counter("server_rx_bytes_total"),
		txBytes:      s.reg.Counter("server_tx_bytes_total"),
		malformed:    s.reg.Counter("server_malformed_frames_total"),
		readErrors:   s.reg.Counter("server_read_errors_total"),
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes open connections and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // best-effort shutdown; handler goroutines report their own errors
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// acceptLoop accepts connections until the listener is closed. Transient
// Accept errors (EMFILE and friends) are retried with capped exponential
// backoff rather than killing the server, and counted as accept_errors.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.met.acceptErrors.Inc()
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			s.logger.Warn("accept failed; retrying", "err", err, "backoff", backoff)
			select {
			case <-time.After(backoff):
			case <-s.done:
				return
			}
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown: drop the connection
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.met.connsOpened.Inc()
	s.met.connsActive.Add(1)
	defer func() {
		s.met.connsActive.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // double-close on shutdown path is harmless
	}()
	remote := conn.RemoteAddr().String()
	for {
		env, n, err := wire.ReadFrame(conn)
		if err != nil {
			// Classify the abort: a clean disconnect is business as usual, a
			// malformed frame means a corrupt or hostile peer, anything else
			// is a transport failure. Each gets its own counter and level.
			switch {
			case errors.Is(err, io.EOF):
				s.logger.Debug("client disconnected", "remote", remote)
			case wire.IsMalformed(err):
				s.met.malformed.Inc()
				s.logger.Warn("malformed frame; dropping connection", "remote", remote, "err", err)
			case s.isClosed() || errors.Is(err, net.ErrClosed):
				s.logger.Debug("connection closed during shutdown", "remote", remote)
			default:
				s.met.readErrors.Inc()
				s.logger.Info("read failed", "remote", remote, "err", err)
			}
			return
		}
		s.met.rxBytes.Add(int64(n))
		if err := s.dispatch(conn, env); err != nil {
			s.logger.Info("reply failed", "remote", remote, "err", err)
			return
		}
	}
}

// dispatch handles one request and writes exactly one response frame. Every
// request is counted, timed per kind, and decomposed into
// decode -> authorize -> engine -> reply phase spans.
func (s *Server) dispatch(conn net.Conn, env *wire.Envelope) error {
	kind := env.Kind
	s.reg.Counter(obs.L("server_requests_total", "kind", kind)).Inc()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	sp := obs.StartSpan(s.reg, "rpc/"+kind)
	defer func() {
		s.reg.Histogram(obs.L("server_request_seconds", "kind", kind)).Observe(sp.End().Seconds())
	}()

	switch kind {
	case wire.KindCreateRepo:
		var req wire.CreateRepoReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			sp.Time("engine", func() {
				_, err = s.svc.CreateRepository(req.RepoID, req.Opts.ToCore())
			})
		}
		return s.writeAck(sp, kind, conn, err)

	case wire.KindTrain:
		var req wire.TrainReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			sp.Time("engine", func() {
				var repo *core.Repository
				if repo, err = s.svc.Repository(req.RepoID); err == nil {
					err = repo.Train()
				}
			})
		}
		return s.writeAck(sp, kind, conn, err)

	case wire.KindUpdate:
		var req wire.UpdateReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			sp.Time("engine", func() {
				var repo *core.Repository
				if repo, err = s.svc.Repository(req.RepoID); err == nil {
					err = repo.Update(&req.Update)
				}
			})
		}
		return s.writeAck(sp, kind, conn, err)

	case wire.KindRemove:
		var req wire.RemoveReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			sp.Time("engine", func() {
				var repo *core.Repository
				if repo, err = s.svc.Repository(req.RepoID); err == nil {
					repo.Remove(req.ObjectID)
				}
			})
		}
		return s.writeAck(sp, kind, conn, err)

	case wire.KindSearch:
		var req wire.SearchReq
		var hits []core.SearchHit
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			sp.Time("engine", func() {
				var repo *core.Repository
				if repo, err = s.svc.Repository(req.RepoID); err == nil {
					hits, err = repo.Search(&req.Query)
				}
			})
		}
		return s.writeSearchResp(sp, kind, conn, hits, err)

	case wire.KindGet:
		var req wire.GetReq
		var ct []byte
		var owner string
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			sp.Time("engine", func() {
				var repo *core.Repository
				if repo, err = s.svc.Repository(req.RepoID); err == nil {
					ct, owner, err = repo.Get(req.ObjectID)
				}
			})
		}
		return s.writeGetResp(sp, kind, conn, ct, owner, err)

	default:
		s.countOpError(kind, errors.New("unknown kind"))
		rsp := sp.Child("reply")
		n, err := wire.WriteFrame(conn, wire.KindError, wire.Ack{Err: "unknown kind: " + kind})
		s.met.txBytes.Add(int64(n))
		rsp.End()
		return err
	}
}

// decode unpacks the request payload under a decode phase span.
func (s *Server) decode(sp *obs.Span, env *wire.Envelope, v interface{}) error {
	dsp := sp.Child("decode")
	err := env.Decode(v)
	dsp.End()
	return err
}

// authorized consults the authorizer, if any, under an authorize phase span.
func (s *Server) authorized(sp *obs.Span, repoID, token string) error {
	if s.authorize == nil {
		return nil
	}
	asp := sp.Child("authorize")
	err := s.authorize(repoID, token)
	asp.End()
	if err != nil {
		s.reg.Counter("server_authz_denials_total").Inc()
		s.logger.Debug("authorization denied", "repo", repoID, "err", err)
	}
	return err
}

// countOpError accounts a failed request (the response still carries the
// error to the client; this is the server-side tally).
func (s *Server) countOpError(kind string, err error) {
	if err == nil {
		return
	}
	s.reg.Counter(obs.L("server_request_errors_total", "kind", kind)).Inc()
	s.logger.Debug("request failed", "kind", kind, "err", err)
}

func (s *Server) writeAck(sp *obs.Span, kind string, conn net.Conn, err error) error {
	s.countOpError(kind, err)
	rsp := sp.Child("reply")
	defer rsp.End()
	ack := wire.Ack{}
	if err != nil {
		ack.Err = err.Error()
	}
	n, werr := wire.WriteFrame(conn, wire.KindAck, ack)
	s.met.txBytes.Add(int64(n))
	return werr
}

func (s *Server) writeSearchResp(sp *obs.Span, kind string, conn net.Conn, hits []core.SearchHit, err error) error {
	s.countOpError(kind, err)
	rsp := sp.Child("reply")
	defer rsp.End()
	resp := wire.SearchResp{Hits: hits}
	if err != nil {
		resp.Err = err.Error()
	}
	n, werr := wire.WriteFrame(conn, wire.KindSearchResp, resp)
	s.met.txBytes.Add(int64(n))
	return werr
}

func (s *Server) writeGetResp(sp *obs.Span, kind string, conn net.Conn, ct []byte, owner string, err error) error {
	s.countOpError(kind, err)
	rsp := sp.Child("reply")
	defer rsp.End()
	resp := wire.GetResp{Ciphertext: ct, Owner: owner}
	if err != nil {
		resp.Err = err.Error()
	}
	n, werr := wire.WriteFrame(conn, wire.KindGetResp, resp)
	s.met.txBytes.Add(int64(n))
	return werr
}
