// Package server exposes the MIE cloud component (core.Service) over TCP
// using the wire protocol: the "MIE Server Component (as a Service)" box of
// Figure 1. Each accepted connection is served by its own goroutine, and —
// protocol v2 — each request on a connection is dispatched on its own
// goroutine with a context.Context derived from the request's wire deadline,
// so 16 pipelined searches from one phone proceed concurrently and a Cancel
// frame can abandon any of them mid-flight. Requests framed by a v1 peer
// (Envelope.ID zero) are served inline in lockstep, preserving the old
// one-request-per-connection semantics without negotiation.
//
// Training is asynchronous: TrainStart launches a server-side job backed by
// core's job table and returns immediately; TrainStatus/TrainWait poll or
// await it. The v1 blocking Train kind is implemented on top of the same
// jobs, so a v1 client still observes its old semantics while the engine
// never ties a training run's lifetime to a socket.
//
// The server is fully instrumented: per-kind request/error counters,
// in-flight gauges (total and per kind), wire-level byte counters, per-kind
// latency histograms, cancel-frame counters and rpc/<kind>/<phase> spans
// (decode -> authorize -> engine -> reply) all land in an obs.Registry, so
// the cloud half of the paper's latency breakdowns is observable on live
// traffic via the -debug-addr endpoint.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mie/internal/auth"
	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/wire"
)

// Authorizer decides whether a request carrying the given bearer token may
// act on a repository (see internal/auth for the token scheme). A nil
// authorizer admits everything (the single-trust-domain deployments of the
// examples).
type Authorizer func(repoID, token string) error

// Option customizes a Server.
type Option func(*Server)

// WithAuthorizer installs request authorization.
func WithAuthorizer(a Authorizer) Option {
	return func(s *Server) { s.authorize = a }
}

// WithObservability records the server's metrics into reg instead of the
// process-wide obs.Default() registry.
func WithObservability(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithTracer installs the distributed tracer requests join (propagated
// TraceID/SpanID from v2 envelopes) and completed traces land in. Defaults
// to obs.DefaultTracer().
func WithTracer(t *obs.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// Accept-retry backoff bounds: transient Accept errors (e.g. EMFILE when the
// process runs out of file descriptors under load) must not kill the accept
// loop; they are retried with capped exponential backoff.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// serverMetrics caches the hot metric handles so the per-request path does
// only atomic increments, no registry lookups.
type serverMetrics struct {
	acceptErrors *obs.Counter
	connsOpened  *obs.Counter
	connsActive  *obs.Gauge
	inflight     *obs.Gauge
	rxBytes      *obs.Counter
	txBytes      *obs.Counter
	malformed    *obs.Counter
	readErrors   *obs.Counter
	cancelFrames *obs.Counter
	cancelHits   *obs.Counter
}

// Server hosts a core.Service on a TCP listener.
type Server struct {
	svc       *core.Service
	listener  net.Listener
	logger    *obs.Logger
	authorize Authorizer
	reg       *obs.Registry
	tracer    *obs.Tracer
	met       serverMetrics

	// Replication seams (see repl.go): repl makes this node a leader,
	// forward makes it a follower for mutations, nodeStatus annotates the
	// handshake with the node's role and lag.
	repl       ReplicationSource
	forward    Forwarder
	nodeStatus func() NodeStatus

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// New starts a server listening on addr (e.g. "127.0.0.1:0"). A nil logger
// discards logs.
func New(addr string, svc *core.Service, logger *obs.Logger, opts ...Option) (*Server, error) {
	if svc == nil {
		return nil, errors.New("server: nil service")
	}
	if logger == nil {
		logger = obs.Nop()
	}
	s := &Server{
		svc:    svc,
		logger: logger,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	if s.tracer == nil {
		s.tracer = obs.DefaultTracer()
	}
	s.initMetrics()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *Server) initMetrics() {
	s.met = serverMetrics{
		acceptErrors: s.reg.Counter("server_accept_errors_total"),
		connsOpened:  s.reg.Counter("server_connections_total"),
		connsActive:  s.reg.Gauge("server_connections_active"),
		inflight:     s.reg.Gauge("server_inflight_requests"),
		rxBytes:      s.reg.Counter("server_rx_bytes_total"),
		txBytes:      s.reg.Counter("server_tx_bytes_total"),
		malformed:    s.reg.Counter("server_malformed_frames_total"),
		readErrors:   s.reg.Counter("server_read_errors_total"),
		cancelFrames: s.reg.Counter("server_cancel_frames_total"),
		cancelHits:   s.reg.Counter("server_cancel_hits_total"),
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes open connections and waits for handler
// goroutines to exit. In-flight request contexts are canceled, so handlers
// blocked in TrainWait return promptly; training jobs themselves keep
// running to completion (they belong to the repository, not the socket).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // best-effort shutdown; handler goroutines report their own errors
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// acceptLoop accepts connections until the listener is closed. Transient
// Accept errors (EMFILE and friends) are retried with capped exponential
// backoff rather than killing the server, and counted as accept_errors.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.met.acceptErrors.Inc()
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			s.logger.Warn("accept failed; retrying", "err", err, "backoff", backoff)
			select {
			case <-time.After(backoff):
			case <-s.done:
				return
			}
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown: drop the connection
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connState is the per-connection multiplexing state: a write lock
// serializing response frames from concurrent handlers, the connection-
// scoped base context, and the table of in-flight request cancel functions
// a Cancel frame indexes into.
type connState struct {
	conn   net.Conn
	remote string
	ctx    context.Context
	cancel context.CancelFunc

	wmu sync.Mutex // serializes frame writes from handler goroutines

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
	handlers sync.WaitGroup
}

// write sends one response frame, echoing the request id, under the
// connection's write lock. Returns bytes written.
func (cs *connState) write(id uint64, kind string, payload interface{}) (int, error) {
	env, err := wire.NewEnvelope(kind, "", id, 0, payload)
	if err != nil {
		return 0, err
	}
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	return wire.WriteEnvelope(cs.conn, env)
}

// writeEnv relays a response envelope produced elsewhere (the leader, via a
// Forwarder) under the connection's write lock, re-stamped with the origin
// request's id. The hop-internal Auth never leaks back to the client.
func (cs *connState) writeEnv(id uint64, env *wire.Envelope) (int, error) {
	out := *env
	out.ID = id
	out.Auth = ""
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	return wire.WriteEnvelope(cs.conn, &out)
}

// register installs a cancel function for an in-flight request id.
func (cs *connState) register(id uint64, cancel context.CancelFunc) {
	if id == 0 {
		return // v1 requests cannot be addressed by Cancel frames
	}
	cs.mu.Lock()
	cs.inflight[id] = cancel
	cs.mu.Unlock()
}

// unregister removes an in-flight entry.
func (cs *connState) unregister(id uint64) {
	if id == 0 {
		return
	}
	cs.mu.Lock()
	delete(cs.inflight, id)
	cs.mu.Unlock()
}

// cancelRequest fires the cancel function of an in-flight request, if the
// id names one. Reports whether it hit.
func (cs *connState) cancelRequest(id uint64) bool {
	cs.mu.Lock()
	cancel, ok := cs.inflight[id]
	cs.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.met.connsOpened.Inc()
	s.met.connsActive.Add(1)
	cs := &connState{
		conn:     conn,
		remote:   conn.RemoteAddr().String(),
		inflight: make(map[uint64]context.CancelFunc),
	}
	cs.ctx, cs.cancel = context.WithCancel(context.Background())
	// Connection-scoped logger: every line of this connection carries the
	// remote address and negotiated protocol version, so malformed-frame and
	// cancel events are attributable to a peer. The version starts at 1 and
	// is re-derived when the peer reveals itself as v2 (Hello frame or a
	// multiplexed request id); only this read loop mutates clog, and handler
	// goroutines capture it by value at spawn time.
	proto := wire.ProtocolV1
	clog := s.logger.With("remote", cs.remote, "proto", proto)
	clog.Debug("connection accepted")
	defer func() {
		// Unblock handlers first (TrainWait etc.), then wait for them so no
		// goroutine writes to a map or conn we are tearing down.
		cs.cancel()
		cs.handlers.Wait()
		s.met.connsActive.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // double-close on shutdown path is harmless
	}()
	for {
		env, n, err := wire.ReadFrame(conn)
		if err != nil {
			// Classify the abort: a clean disconnect is business as usual, a
			// malformed frame means a corrupt or hostile peer, anything else
			// is a transport failure. Each gets its own counter and level.
			switch {
			case errors.Is(err, io.EOF):
				clog.Debug("client disconnected")
			case wire.IsMalformed(err):
				s.met.malformed.Inc()
				clog.Warn("malformed frame; dropping connection", "err", err)
			case s.isClosed() || errors.Is(err, net.ErrClosed):
				clog.Debug("connection closed during shutdown")
			default:
				s.met.readErrors.Inc()
				clog.Info("read failed", "err", err)
			}
			return
		}
		s.met.rxBytes.Add(int64(n))
		if proto == wire.ProtocolV1 && (env.Kind == wire.KindHello || env.ID != 0) {
			proto = wire.ProtocolV2
			clog = s.logger.With("remote", cs.remote, "proto", proto)
		}
		switch {
		case env.Kind == wire.KindHello:
			// Version negotiation: always answer v2 (a v1 server would have
			// answered KindError, which is the client's fallback signal).
			s.reg.Counter(obs.L("server_requests_total", "kind", env.Kind)).Inc()
			wn, werr := cs.write(env.ID, wire.KindHelloResp, s.helloResp())
			s.met.txBytes.Add(int64(wn))
			if werr != nil {
				clog.Info("hello reply failed", "err", werr)
				return
			}
		case env.Kind == wire.KindReplAck:
			// Fire-and-forget like Cancel: feed the leader's cursor
			// accounting, send nothing.
			var ack wire.ReplAck
			if err := env.Decode(&ack); err != nil {
				clog.Debug("bad repl-ack frame", "err", err)
				continue
			}
			if s.repl != nil {
				s.repl.Ack(ack)
			}
		case env.Kind == wire.KindCancel:
			// Fire-and-forget: cancel the in-flight request, send nothing.
			s.met.cancelFrames.Inc()
			var req wire.CancelReq
			if err := env.Decode(&req); err != nil {
				clog.Debug("bad cancel frame", "err", err)
				continue
			}
			if cs.cancelRequest(req.ID) {
				s.met.cancelHits.Inc()
				clog.Debug("request canceled", "id", req.ID)
			}
		case env.ID == 0:
			// v1 lockstep framing: handle inline so the response is written
			// before the next request is read, exactly as protocol v1
			// promises its peers.
			if err := s.handle(cs, clog, env); err != nil {
				clog.Info("reply failed", "err", err)
				return
			}
		default:
			// v2 multiplexed framing: each request runs on its own goroutine;
			// the write lock inside connState serializes response frames.
			cs.handlers.Add(1)
			go func(env *wire.Envelope, lg *obs.Logger) {
				defer cs.handlers.Done()
				if err := s.handle(cs, lg, env); err != nil {
					lg.Info("reply failed", "id", env.ID, "err", err)
				}
			}(env, clog)
		}
	}
}

// handle dispatches one request and writes exactly one response frame. Every
// request is counted, timed per kind, and decomposed into
// decode -> authorize -> engine -> reply phase spans. The request context is
// derived from the connection (canceled at teardown), bounded by the wire
// deadline, and registered under the request id so Cancel frames reach it.
// When the envelope carries trace context (or this side's sampler fires),
// the request's spans are collected into one trace finished — and possibly
// kept — when the reply is written.
func (s *Server) handle(cs *connState, lg *obs.Logger, env *wire.Envelope) error {
	kind := env.Kind
	s.reg.Counter(obs.L("server_requests_total", "kind", kind)).Inc()
	s.met.inflight.Add(1)
	kindInflight := s.reg.Gauge(obs.L("server_inflight_requests", "kind", kind))
	kindInflight.Add(1)
	defer func() {
		s.met.inflight.Add(-1)
		kindInflight.Add(-1)
	}()

	ctx := cs.ctx
	var cancel context.CancelFunc
	if d, ok := env.Timeout(); ok {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	cs.register(env.ID, cancel)
	defer cs.unregister(env.ID)

	// Join the caller's trace (or start a server-local one if the head
	// sampler or slow-capture is armed). Finish runs after the rpc span has
	// ended — defers run LIFO — so the root span is complete when the keep
	// decision is made.
	ctx, at := s.tracer.Join(ctx, env.TraceID, env.SpanID, env.TraceSampled)
	defer at.Finish()

	ctx, sp := obs.StartSpan(ctx, s.reg, "rpc/"+kind)
	defer func() {
		s.reg.Histogram(obs.L("server_request_seconds", "kind", kind)).Observe(sp.End().Seconds())
	}()
	if lg.Enabled(obs.LevelDebug) {
		lg.Debug("request", "id", env.ID, "kind", kind)
	}

	// Replication streams hold their handler goroutine for the life of the
	// subscription; everything about them is handled apart.
	if kind == wire.KindReplSubscribe {
		return s.handleReplSubscribe(ctx, cs, env)
	}
	// A follower answers mutations and training by relaying them to the
	// leader — before local admission, which the leader applies itself
	// against the forwarded bearer token.
	if s.forward != nil && forwarded(kind) {
		return s.forwardRequest(ctx, cs, env)
	}

	// Per-tenant admission: repository-scoped requests count against the
	// caller's in-flight quota before any engine work runs, so one hot
	// tenant saturating the server cannot starve the others. The rejection
	// is a normal typed response (ErrCodeOverQuota + retry-after), not a
	// dropped connection — the client backs off and retries.
	if gov := s.svc.Tenants(); gov != nil && repoScoped(kind) {
		release, aerr := gov.Admit(principal(env.Auth))
		if aerr != nil {
			return s.writeKindError(sp, kind, cs, env.ID, aerr)
		}
		defer release()
	}

	switch kind {
	case wire.KindCreateRepo:
		var req wire.CreateRepoReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			err = ctx.Err()
		}
		if err == nil {
			sp.Time("engine", func() {
				_, err = s.svc.CreateRepository(req.RepoID, req.Opts.ToCore())
			})
		}
		return s.writeAck(sp, kind, cs, env.ID, err)

	case wire.KindTrain:
		// v1 blocking semantics on top of the async job table: start (or
		// join) a job, then wait for it under the request context.
		var req wire.TrainReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			ectx, esp := sp.ChildContext(ctx, "engine")
			var repo *core.Repository
			var done func()
			if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
				var st core.TrainJobStatus
				if st, err = repo.TrainWait(ectx, repo.TrainStart()); err == nil && st.State == core.TrainFailed {
					err = errors.New(st.Err)
				}
				done()
			}
			esp.End()
		}
		return s.writeAck(sp, kind, cs, env.ID, err)

	case wire.KindTrainStart:
		var req wire.TrainReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		var st core.TrainJobStatus
		if err == nil {
			sp.Time("engine", func() {
				var repo *core.Repository
				var done func()
				if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
					st, err = repo.TrainJob(repo.TrainStart())
					done()
				}
			})
		}
		return s.writeTrainJobResp(sp, kind, cs, env.ID, st, err)

	case wire.KindTrainStatus, wire.KindTrainWait:
		var req wire.TrainJobReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		var st core.TrainJobStatus
		if err == nil {
			ectx, esp := sp.ChildContext(ctx, "engine")
			var repo *core.Repository
			var done func()
			if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
				if kind == wire.KindTrainStatus {
					st, err = repo.TrainJob(req.JobID)
				} else {
					st, err = repo.TrainWait(ectx, req.JobID)
					if err != nil && !errors.Is(err, core.ErrUnknownJob) && st.JobID != 0 {
						// Deadline expired while the job still runs: not a
						// request failure — report the running status and
						// let the client decide whether to keep waiting.
						err = nil
					}
				}
				done()
			}
			esp.End()
		}
		return s.writeTrainJobResp(sp, kind, cs, env.ID, st, err)

	case wire.KindUpdate:
		var req wire.UpdateReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			err = ctx.Err()
		}
		if err == nil {
			ectx, esp := sp.ChildContext(ctx, "engine")
			var repo *core.Repository
			var done func()
			if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
				err = repo.UpdateContext(ectx, &req.Update)
				done()
			}
			esp.End()
		}
		return s.writeAck(sp, kind, cs, env.ID, err)

	case wire.KindRemove:
		var req wire.RemoveReq
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			err = ctx.Err()
		}
		if err == nil {
			ectx, esp := sp.ChildContext(ctx, "engine")
			var repo *core.Repository
			var done func()
			if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
				err = repo.RemoveContext(ectx, req.ObjectID)
				done()
			}
			esp.End()
		}
		return s.writeAck(sp, kind, cs, env.ID, err)

	case wire.KindSearch:
		var req wire.SearchReq
		var hits []core.SearchHit
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			// An already-expired deadline (or a Cancel frame that won the
			// race) returns promptly without touching the engine — the
			// "no RPC blocked behind training" guarantee.
			err = ctx.Err()
		}
		if err == nil {
			ectx, esp := sp.ChildContext(ctx, "engine")
			var repo *core.Repository
			var done func()
			if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
				hits, err = repo.SearchContext(ectx, &req.Query)
				done()
			}
			esp.End()
			if err == nil && ctx.Err() != nil {
				// Canceled while the engine ran: the caller is gone; suppress
				// the result so the (dropped) reply carries no hits.
				hits, err = nil, ctx.Err()
			}
		}
		return s.writeSearchResp(sp, kind, cs, env.ID, hits, err)

	case wire.KindGet:
		var req wire.GetReq
		var ct []byte
		var owner string
		err := s.decode(sp, env, &req)
		if err == nil {
			err = s.authorized(sp, req.RepoID, env.Auth)
		}
		if err == nil {
			err = ctx.Err()
		}
		if err == nil {
			ectx, esp := sp.ChildContext(ctx, "engine")
			var repo *core.Repository
			var done func()
			if repo, done, err = s.svc.Acquire(req.RepoID); err == nil {
				ct, owner, err = repo.GetContext(ectx, req.ObjectID)
				done()
			}
			esp.End()
		}
		return s.writeGetResp(sp, kind, cs, env.ID, ct, owner, err)

	case wire.KindTraceGet:
		// Hand the client the server-side half of its own trace. Trace ids
		// are 64-bit capabilities drawn from crypto-seeded randomness; the
		// ring only holds kept traces, so this reveals nothing a client
		// could not already observe about its own requests.
		var req wire.TraceGetReq
		err := s.decode(sp, env, &req)
		resp := wire.TraceResp{}
		if err == nil {
			if tr, ok := s.tracer.Get(req.TraceID); ok {
				resp.TraceID = tr.TraceID
				resp.Root = tr.Root
				resp.StartUnixNano = tr.StartUnixNano
				resp.DurationNanos = tr.DurationNanos
				resp.Reason = tr.Reason
				for _, rec := range tr.Spans {
					resp.Spans = append(resp.Spans, wire.TraceSpan{
						SpanID:        rec.SpanID,
						ParentID:      rec.ParentID,
						Name:          rec.Name,
						StartUnixNano: rec.StartUnixNano,
						DurationNanos: rec.DurationNanos,
						Err:           rec.Err,
					})
				}
			} else {
				resp.Err = "trace not found (not kept or evicted)"
			}
		} else {
			resp.Err = err.Error()
		}
		rsp := sp.Child("reply")
		n, werr := cs.write(env.ID, wire.KindTraceResp, resp)
		s.met.txBytes.Add(int64(n))
		rsp.End()
		return werr

	default:
		s.countOpError(kind, errors.New("unknown kind"))
		rsp := sp.Child("reply")
		n, err := cs.write(env.ID, wire.KindError, wire.Ack{Err: "unknown kind: " + kind})
		s.met.txBytes.Add(int64(n))
		rsp.End()
		return err
	}
}

// decode unpacks the request payload under a decode phase span.
func (s *Server) decode(sp *obs.Span, env *wire.Envelope, v interface{}) error {
	dsp := sp.Child("decode")
	err := env.Decode(v)
	dsp.End()
	return err
}

// authorized consults the authorizer, if any, under an authorize phase span.
func (s *Server) authorized(sp *obs.Span, repoID, token string) error {
	if s.authorize == nil {
		return nil
	}
	asp := sp.Child("authorize")
	err := s.authorize(repoID, token)
	asp.End()
	if err != nil {
		s.reg.Counter("server_authz_denials_total").Inc()
		s.logger.Debug("authorization denied", "repo", repoID, "err", err)
	}
	return err
}

// repoScoped reports whether a request kind acts on a repository and thus
// counts against the caller's tenant quotas. Hello/Cancel never reach
// handle; TraceGet is a diagnostics read outside any repository.
func repoScoped(kind string) bool {
	switch kind {
	case wire.KindCreateRepo, wire.KindTrain, wire.KindTrainStart,
		wire.KindTrainStatus, wire.KindTrainWait, wire.KindUpdate,
		wire.KindRemove, wire.KindSearch, wire.KindGet:
		return true
	}
	return false
}

// principal extracts the tenant identity from a bearer token for quota
// accounting. The MAC is deliberately not checked here: admission happens
// before per-repo authorization (which does verify), and an attacker who
// forges a User only burns that user's quota, never bypasses authorization.
// Tokenless requests pool under "anonymous".
func principal(token string) string {
	if token == "" {
		return "anonymous"
	}
	t, err := auth.Parse(token)
	if err != nil || t.User == "" {
		return "anonymous"
	}
	return t.User
}

// writeKindError writes the kind-appropriate error response (admission
// rejections happen before the request switch, so the reply type must be
// chosen from the kind alone).
func (s *Server) writeKindError(sp *obs.Span, kind string, cs *connState, id uint64, err error) error {
	switch kind {
	case wire.KindSearch:
		return s.writeSearchResp(sp, kind, cs, id, nil, err)
	case wire.KindGet:
		return s.writeGetResp(sp, kind, cs, id, nil, "", err)
	case wire.KindTrainStart, wire.KindTrainStatus, wire.KindTrainWait:
		return s.writeTrainJobResp(sp, kind, cs, id, core.TrainJobStatus{}, err)
	default:
		return s.writeAck(sp, kind, cs, id, err)
	}
}

// countOpError accounts a failed request (the response still carries the
// error to the client; this is the server-side tally).
func (s *Server) countOpError(kind string, err error) {
	if err == nil {
		return
	}
	s.reg.Counter(obs.L("server_request_errors_total", "kind", kind)).Inc()
	s.logger.Debug("request failed", "kind", kind, "err", err)
}

func (s *Server) writeAck(sp *obs.Span, kind string, cs *connState, id uint64, err error) error {
	s.countOpError(kind, err)
	sp.SetError(err)
	rsp := sp.Child("reply")
	defer rsp.End()
	ack := wire.Ack{}
	if err != nil {
		ack.Err = err.Error()
		code, ra := wire.ErrCode(err)
		ack.Code, ack.RetryAfterNanos = code, ra.Nanoseconds()
	}
	n, werr := cs.write(id, wire.KindAck, ack)
	s.met.txBytes.Add(int64(n))
	return werr
}

func (s *Server) writeSearchResp(sp *obs.Span, kind string, cs *connState, id uint64, hits []core.SearchHit, err error) error {
	s.countOpError(kind, err)
	sp.SetError(err)
	rsp := sp.Child("reply")
	defer rsp.End()
	resp := wire.SearchResp{Hits: hits}
	if err != nil {
		resp.Err = err.Error()
		code, ra := wire.ErrCode(err)
		resp.Code, resp.RetryAfterNanos = code, ra.Nanoseconds()
	}
	n, werr := cs.write(id, wire.KindSearchResp, resp)
	s.met.txBytes.Add(int64(n))
	return werr
}

func (s *Server) writeGetResp(sp *obs.Span, kind string, cs *connState, id uint64, ct []byte, owner string, err error) error {
	s.countOpError(kind, err)
	sp.SetError(err)
	rsp := sp.Child("reply")
	defer rsp.End()
	resp := wire.GetResp{Ciphertext: ct, Owner: owner}
	if err != nil {
		resp.Err = err.Error()
		code, ra := wire.ErrCode(err)
		resp.Code, resp.RetryAfterNanos = code, ra.Nanoseconds()
	}
	n, werr := cs.write(id, wire.KindGetResp, resp)
	s.met.txBytes.Add(int64(n))
	return werr
}

func (s *Server) writeTrainJobResp(sp *obs.Span, kind string, cs *connState, id uint64, st core.TrainJobStatus, err error) error {
	s.countOpError(kind, err)
	sp.SetError(err)
	rsp := sp.Child("reply")
	defer rsp.End()
	resp := wire.TrainJobResp{Job: wire.TrainJobStatus{
		JobID: st.JobID,
		State: string(st.State),
		Err:   st.Err,
		Epoch: st.Epoch,
	}}
	if err != nil {
		resp.Err = err.Error()
		code, ra := wire.ErrCode(err)
		resp.Code, resp.RetryAfterNanos = code, ra.Nanoseconds()
	}
	n, werr := cs.write(id, wire.KindTrainJobResp, resp)
	s.met.txBytes.Add(int64(n))
	return werr
}
