// Package server exposes the MIE cloud component (core.Service) over TCP
// using the wire protocol: the "MIE Server Component (as a Service)" box of
// Figure 1. Each accepted connection is served by its own goroutine; the
// underlying engine is already safe for the concurrent multi-user access
// the system model requires.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"mie/internal/core"
	"mie/internal/wire"
)

// Authorizer decides whether a request carrying the given bearer token may
// act on a repository (see internal/auth for the token scheme). A nil
// authorizer admits everything (the single-trust-domain deployments of the
// examples).
type Authorizer func(repoID, token string) error

// Option customizes a Server.
type Option func(*Server)

// WithAuthorizer installs request authorization.
func WithAuthorizer(a Authorizer) Option {
	return func(s *Server) { s.authorize = a }
}

// Server hosts a core.Service on a TCP listener.
type Server struct {
	svc       *core.Service
	listener  net.Listener
	logger    *log.Logger
	authorize Authorizer

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts a server listening on addr (e.g. "127.0.0.1:0").
func New(addr string, svc *core.Service, logger *log.Logger, opts ...Option) (*Server, error) {
	if svc == nil {
		return nil, errors.New("server: nil service")
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		svc:    svc,
		logger: logger,
		conns:  make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes open connections and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // best-effort shutdown; handler goroutines report their own errors
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown: drop the connection
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // double-close on shutdown path is harmless
	}()
	for {
		env, _, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logger.Printf("server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if err := s.dispatch(conn, env); err != nil {
			s.logger.Printf("server: reply to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch handles one request and writes exactly one response frame.
func (s *Server) dispatch(conn net.Conn, env *wire.Envelope) error {
	switch env.Kind {
	case wire.KindCreateRepo:
		var req wire.CreateRepoReq
		if err := env.Decode(&req); err != nil {
			return s.writeAck(conn, err)
		}
		if err := s.allowed(req.RepoID, env.Auth); err != nil {
			return s.writeAck(conn, err)
		}
		_, err := s.svc.CreateRepository(req.RepoID, req.Opts.ToCore())
		return s.writeAck(conn, err)

	case wire.KindTrain:
		var req wire.TrainReq
		if err := env.Decode(&req); err != nil {
			return s.writeAck(conn, err)
		}
		if err := s.allowed(req.RepoID, env.Auth); err != nil {
			return s.writeAck(conn, err)
		}
		repo, err := s.svc.Repository(req.RepoID)
		if err != nil {
			return s.writeAck(conn, err)
		}
		return s.writeAck(conn, repo.Train())

	case wire.KindUpdate:
		var req wire.UpdateReq
		if err := env.Decode(&req); err != nil {
			return s.writeAck(conn, err)
		}
		if err := s.allowed(req.RepoID, env.Auth); err != nil {
			return s.writeAck(conn, err)
		}
		repo, err := s.svc.Repository(req.RepoID)
		if err != nil {
			return s.writeAck(conn, err)
		}
		return s.writeAck(conn, repo.Update(&req.Update))

	case wire.KindRemove:
		var req wire.RemoveReq
		if err := env.Decode(&req); err != nil {
			return s.writeAck(conn, err)
		}
		if err := s.allowed(req.RepoID, env.Auth); err != nil {
			return s.writeAck(conn, err)
		}
		repo, err := s.svc.Repository(req.RepoID)
		if err != nil {
			return s.writeAck(conn, err)
		}
		repo.Remove(req.ObjectID)
		return s.writeAck(conn, nil)

	case wire.KindSearch:
		var req wire.SearchReq
		if err := env.Decode(&req); err != nil {
			return s.writeSearchResp(conn, nil, err)
		}
		if err := s.allowed(req.RepoID, env.Auth); err != nil {
			return s.writeSearchResp(conn, nil, err)
		}
		repo, err := s.svc.Repository(req.RepoID)
		if err != nil {
			return s.writeSearchResp(conn, nil, err)
		}
		hits, err := repo.Search(&req.Query)
		return s.writeSearchResp(conn, hits, err)

	case wire.KindGet:
		var req wire.GetReq
		if err := env.Decode(&req); err != nil {
			return s.writeGetResp(conn, nil, "", err)
		}
		if err := s.allowed(req.RepoID, env.Auth); err != nil {
			return s.writeGetResp(conn, nil, "", err)
		}
		repo, err := s.svc.Repository(req.RepoID)
		if err != nil {
			return s.writeGetResp(conn, nil, "", err)
		}
		ct, owner, err := repo.Get(req.ObjectID)
		return s.writeGetResp(conn, ct, owner, err)

	default:
		_, err := wire.WriteFrame(conn, wire.KindError, wire.Ack{Err: "unknown kind: " + env.Kind})
		return err
	}
}

// allowed consults the authorizer, if any.
func (s *Server) allowed(repoID, token string) error {
	if s.authorize == nil {
		return nil
	}
	return s.authorize(repoID, token)
}

func (s *Server) writeAck(conn net.Conn, err error) error {
	ack := wire.Ack{}
	if err != nil {
		ack.Err = err.Error()
	}
	_, werr := wire.WriteFrame(conn, wire.KindAck, ack)
	return werr
}

func (s *Server) writeSearchResp(conn net.Conn, hits []core.SearchHit, err error) error {
	resp := wire.SearchResp{Hits: hits}
	if err != nil {
		resp.Err = err.Error()
	}
	_, werr := wire.WriteFrame(conn, wire.KindSearchResp, resp)
	return werr
}

func (s *Server) writeGetResp(conn net.Conn, ct []byte, owner string, err error) error {
	resp := wire.GetResp{Ciphertext: ct, Owner: owner}
	if err != nil {
		resp.Err = err.Error()
	}
	_, werr := wire.WriteFrame(conn, wire.KindGetResp, resp)
	return werr
}
