package server

// Tests for per-tenant admission control at the request boundary: in-flight
// rejections arrive as typed wire errors with a retry hint, per response
// kind, before any engine work runs.

import (
	"errors"
	"testing"
	"time"

	"mie/internal/auth"
	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/leakcheck"
)

func TestAdmissionRejectsOverInflightQuota(t *testing.T) {
	leakcheck.Check(t)
	svc, _, err := core.OpenService(core.ServiceOptions{Quotas: core.Quotas{MaxInflight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	conn := dial(t, srv, nil)

	if err := conn.CreateRepository(testCtx, "adm", smallOpts()); err != nil {
		t.Fatal(err)
	}

	// Fill the anonymous tenant's only slot out of band; every subsequent
	// request must bounce with a typed over-quota error.
	release, err := svc.Tenants().Admit("anonymous")
	if err != nil {
		t.Fatal(err)
	}

	// Ack-carrying kind.
	err = conn.Remove(testCtx, "adm", "whatever")
	if !errors.Is(err, core.ErrOverQuota) {
		t.Fatalf("remove while saturated: err = %v, want ErrOverQuota", err)
	}
	// Search and Get responses carry the code through their own frames.
	if _, _, err := conn.Get(testCtx, "adm", "x"); !errors.Is(err, core.ErrOverQuota) {
		t.Errorf("get while saturated: err = %v, want ErrOverQuota", err)
	}
	if _, err := conn.TrainStart(testCtx, "adm"); !errors.Is(err, core.ErrOverQuota) {
		t.Errorf("train-start while saturated: err = %v, want ErrOverQuota", err)
	}

	// The rejection carries the in-flight retry hint over the wire.
	var rerr *client.RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("rejection %T is not a RemoteError", err)
	}
	if rerr.RetryAfter <= 0 {
		t.Errorf("in-flight rejection retry-after = %v, want > 0", rerr.RetryAfter)
	}

	release()
	if err := conn.Remove(testCtx, "adm", "x"); errors.Is(err, core.ErrOverQuota) {
		t.Errorf("request after release still rejected: %v", err)
	}
}

func TestAdmissionKeysOnTokenPrincipal(t *testing.T) {
	leakcheck.Check(t)
	var masterAuth crypto.Key
	masterAuth[0] = 7
	authority := auth.NewAuthority(masterAuth)
	svc, _, err := core.OpenService(core.ServiceOptions{Quotas: core.Quotas{MaxInflight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	if err := dial(t, srv, nil).CreateRepository(testCtx, "adm2", smallOpts()); err != nil {
		t.Fatal(err)
	}

	// Saturate alice. A connection bearing alice's token is rejected; bob's
	// token (and tokenless "anonymous" traffic) is unaffected — quotas
	// isolate tenants from each other, not from themselves only.
	releaseAlice, err := svc.Tenants().Admit("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer releaseAlice()

	tokFor := func(user string) string {
		tok, err := authority.Issue(user, "adm2", time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return tok.Encode()
	}
	aliceConn := dial(t, srv, nil)
	aliceConn.SetToken(tokFor("alice"))
	if _, _, err := aliceConn.Get(testCtx, "adm2", "x"); !errors.Is(err, core.ErrOverQuota) {
		t.Errorf("alice while saturated: err = %v, want ErrOverQuota", err)
	}
	bobConn := dial(t, srv, nil)
	bobConn.SetToken(tokFor("bob"))
	if _, _, err := bobConn.Get(testCtx, "adm2", "x"); errors.Is(err, core.ErrOverQuota) {
		t.Errorf("bob rejected by alice's quota: %v", err)
	}
	if _, _, err := dial(t, srv, nil).Get(testCtx, "adm2", "x"); errors.Is(err, core.ErrOverQuota) {
		t.Errorf("anonymous rejected by alice's quota: %v", err)
	}
}
