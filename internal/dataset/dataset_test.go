package dataset

import (
	"strings"
	"testing"

	"mie/internal/imaging"
	"mie/internal/vec"
)

func TestFlickrDeterministic(t *testing.T) {
	a := Flickr(FlickrParams{N: 10, Seed: 1})
	b := Flickr(FlickrParams{N: 10, Seed: 1})
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Text != b[i].Text {
			t.Fatalf("object %d differs across runs", i)
		}
		for j := range a[i].Image.Pix {
			if a[i].Image.Pix[j] != b[i].Image.Pix[j] {
				t.Fatalf("object %d image differs across runs", i)
			}
		}
	}
	c := Flickr(FlickrParams{N: 10, Seed: 2})
	if c[0].Text == a[0].Text && c[1].Text == a[1].Text {
		t.Error("different seeds produced identical corpora")
	}
}

func TestFlickrShape(t *testing.T) {
	objs := Flickr(FlickrParams{N: 24, ImageSize: 32, Seed: 3, Owner: "bob"})
	if len(objs) != 24 {
		t.Fatalf("N = %d", len(objs))
	}
	ids := make(map[string]bool)
	for _, o := range objs {
		if ids[o.ID] {
			t.Fatalf("duplicate id %s", o.ID)
		}
		ids[o.ID] = true
		if o.Owner != "bob" {
			t.Errorf("owner = %q", o.Owner)
		}
		if o.Image == nil || o.Image.W != 32 {
			t.Error("bad image")
		}
		if len(strings.Fields(o.Text)) < 2 {
			t.Errorf("object %s has too few tags: %q", o.ID, o.Text)
		}
	}
}

func TestFlickrTopicsShareTags(t *testing.T) {
	objs := Flickr(FlickrParams{N: 80, Seed: 4})
	// Objects 0 and 8 share topic 0; their tag vocabularies should overlap
	// more often than objects of different topics, statistically. Just
	// check that topic words appear.
	beachy := 0
	for i := 0; i < len(objs); i += len(topicWords) {
		if strings.Contains(objs[i].Text, "beach") || strings.Contains(objs[i].Text, "ocean") ||
			strings.Contains(objs[i].Text, "sand") || strings.Contains(objs[i].Text, "waves") ||
			strings.Contains(objs[i].Text, "surf") || strings.Contains(objs[i].Text, "sunny") ||
			strings.Contains(objs[i].Text, "holiday") || strings.Contains(objs[i].Text, "palm") ||
			strings.Contains(objs[i].Text, "coast") || strings.Contains(objs[i].Text, "tropical") {
			beachy++
		}
	}
	if beachy < 5 {
		t.Errorf("topic-0 objects rarely carry topic-0 tags: %d", beachy)
	}
}

func TestTopicImagesClassStructure(t *testing.T) {
	// Same-topic images must be closer in descriptor space than
	// different-topic images on average.
	pyr := imaging.PyramidParams{Scales: []int{16}}
	d0a := imaging.Extract(TopicImage(32, 0, 1), pyr)
	d0b := imaging.Extract(TopicImage(32, 0, 2), pyr)
	d1 := imaging.Extract(TopicImage(32, 1, 3), pyr)
	var same, diff float64
	for i := range d0a {
		same += vec.Euclidean(d0a[i], d0b[i])
		diff += vec.Euclidean(d0a[i], d1[i])
	}
	if same >= diff {
		t.Errorf("same-topic distance %v >= cross-topic %v", same, diff)
	}
}

func TestHolidaysShape(t *testing.T) {
	set := Holidays(HolidaysParams{Groups: 5, PerGroup: 4, ImageSize: 32, Seed: 5})
	if len(set.Queries) != 5 {
		t.Fatalf("queries = %d", len(set.Queries))
	}
	if len(set.Objects) != 5*3 {
		t.Fatalf("objects = %d, want 15 (queries excluded)", len(set.Objects))
	}
	objIDs := make(map[string]bool, len(set.Objects))
	for _, o := range set.Objects {
		objIDs[o.ID] = true
	}
	for _, q := range set.Queries {
		if len(q.Relevant) != 3 {
			t.Errorf("query %s has %d relevant", q.Query.ID, len(q.Relevant))
		}
		for _, r := range q.Relevant {
			if !objIDs[r] {
				t.Errorf("relevant id %s not in corpus", r)
			}
		}
		if objIDs[q.Query.ID] {
			t.Errorf("query %s leaked into corpus", q.Query.ID)
		}
	}
}

func TestHolidaysGroupsAreNearDuplicates(t *testing.T) {
	set := Holidays(HolidaysParams{Groups: 3, PerGroup: 3, ImageSize: 32, Seed: 6})
	pyr := imaging.PyramidParams{Scales: []int{16}}
	q := imaging.Extract(set.Queries[0].Query.Image, pyr)
	// Distance to first variant of same group vs first object of another group.
	sameGroup := imaging.Extract(set.Objects[0].Image, pyr)  // g0 v1
	otherGroup := imaging.Extract(set.Objects[2].Image, pyr) // g1 v1
	var same, other float64
	for i := range q {
		same += vec.Euclidean(q[i], sameGroup[i])
		other += vec.Euclidean(q[i], otherGroup[i])
	}
	if same >= other {
		t.Errorf("query closer to wrong group: same=%v other=%v", same, other)
	}
}

func TestHolidaysDeterministic(t *testing.T) {
	a := Holidays(HolidaysParams{Groups: 2, Seed: 7})
	b := Holidays(HolidaysParams{Groups: 2, Seed: 7})
	for i := range a.Objects {
		for j := range a.Objects[i].Image.Pix {
			if a.Objects[i].Image.Pix[j] != b.Objects[i].Image.Pix[j] {
				t.Fatal("holidays not deterministic")
			}
		}
	}
}

func TestSyntheticTextShape(t *testing.T) {
	docs := SyntheticText(SyntheticTextParams{N: 50, VocabSize: 100, WordsPerDoc: 10, Seed: 9})
	if len(docs) != 50 {
		t.Fatalf("N = %d", len(docs))
	}
	vocab := make(map[string]bool)
	for _, d := range docs {
		if d.Image != nil {
			t.Fatal("text corpus has images")
		}
		words := strings.Fields(d.Text)
		if len(words) < 3 {
			t.Errorf("doc %s too short: %q", d.ID, d.Text)
		}
		for _, w := range words {
			vocab[w] = true
		}
	}
	if len(vocab) < 20 || len(vocab) > 100 {
		t.Errorf("observed vocabulary %d, want a healthy fraction of 100", len(vocab))
	}
}

func TestSyntheticTextDeterministic(t *testing.T) {
	a := SyntheticText(SyntheticTextParams{N: 10, Seed: 4})
	b := SyntheticText(SyntheticTextParams{N: 10, Seed: 4})
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatal("not deterministic")
		}
	}
	c := SyntheticText(SyntheticTextParams{N: 10, Seed: 5})
	same := 0
	for i := range a {
		if a[i].Text == c[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}
