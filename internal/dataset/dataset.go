// Package dataset generates the synthetic workloads that stand in for the
// paper's datasets:
//
//   - Flickr: a MIR-Flickr-like multimodal corpus — procedurally textured
//     images with correlated, Zipf-distributed user tags, organized around
//     latent topics. Used by the update/search/energy experiments
//     (Figures 2-6), which sweep corpus size, not content.
//   - Holidays: an INRIA-Holidays-like retrieval benchmark — groups of
//     near-duplicate images (a base photo plus perturbed variants), where
//     each group's first image queries for the rest. Used by the retrieval
//     precision experiment (Table III).
//
// Both are fully deterministic given their seed, so every experiment is
// reproducible bit-for-bit.
package dataset

import (
	"fmt"
	"math/rand"

	"mie/internal/core"
	"mie/internal/imaging"
)

// topicWords is the per-topic tag vocabulary; tags within a topic co-occur,
// mimicking Flickr's user tagging.
var topicWords = [][]string{
	{"beach", "sand", "ocean", "waves", "surf", "sunny", "holiday", "palm", "coast", "tropical"},
	{"mountain", "snow", "hiking", "trail", "peak", "climbing", "alpine", "summit", "glacier", "ridge"},
	{"city", "skyline", "building", "night", "lights", "urban", "street", "traffic", "downtown", "bridge"},
	{"forest", "trees", "green", "nature", "moss", "river", "wildlife", "leaves", "trail", "mist"},
	{"portrait", "face", "smile", "family", "friends", "party", "wedding", "celebration", "people", "candid"},
	{"food", "dinner", "restaurant", "delicious", "recipe", "kitchen", "dessert", "coffee", "breakfast", "wine"},
	{"sunset", "sky", "clouds", "golden", "horizon", "dusk", "evening", "silhouette", "orange", "reflection"},
	{"winter", "ice", "frost", "cold", "snowfall", "frozen", "january", "blizzard", "skating", "sled"},
}

// commonWords are topic-independent tags sprinkled across all objects.
var commonWords = []string{
	"photo", "camera", "travel", "2016", "trip", "canon", "nikon", "flickr",
	"explore", "color", "light", "day", "new", "old", "big", "small",
}

// FlickrParams configures the multimodal corpus generator.
type FlickrParams struct {
	// N is the number of objects (the 1000/2000/3000 sweep of the figures).
	N int
	// ImageSize is the square image side; 0 defaults to 64.
	ImageSize int
	// TagsPerObject is the mean tag count; 0 defaults to 6.
	TagsPerObject int
	// Seed drives all randomness.
	Seed int64
	// Owner stamps the generated objects; empty defaults to "user1".
	Owner string
}

// Flickr generates a deterministic multimodal corpus.
func Flickr(p FlickrParams) []*core.Object {
	if p.ImageSize == 0 {
		p.ImageSize = 64
	}
	if p.TagsPerObject == 0 {
		p.TagsPerObject = 6
	}
	if p.Owner == "" {
		p.Owner = "user1"
	}
	rng := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(commonWords)-1))
	objs := make([]*core.Object, 0, p.N)
	for i := 0; i < p.N; i++ {
		topic := i % len(topicWords)
		tags := sampleTags(rng, zipf, topic, p.TagsPerObject)
		img := TopicImage(p.ImageSize, topic, rng.Int63())
		objs = append(objs, &core.Object{
			ID:    fmt.Sprintf("flickr-%06d", i),
			Owner: p.Owner,
			Text:  tags,
			Image: img,
		})
	}
	return objs
}

// sampleTags draws topic tags plus Zipf-distributed common tags.
func sampleTags(rng *rand.Rand, zipf *rand.Zipf, topic, mean int) string {
	words := topicWords[topic]
	n := mean/2 + rng.Intn(mean)
	if n < 2 {
		n = 2
	}
	out := ""
	for j := 0; j < n; j++ {
		var w string
		if rng.Float64() < 0.7 {
			w = words[rng.Intn(len(words))]
		} else {
			w = commonWords[zipf.Uint64()]
		}
		if out != "" {
			out += " "
		}
		out += w
	}
	return out
}

// TopicImage renders a procedural image whose texture statistics depend on
// the topic (shared base pattern) with per-instance noise, giving the
// descriptor pipeline real same-class/different-class structure.
func TopicImage(size, topic int, instanceSeed int64) *imaging.Image {
	im, err := imaging.NewImage(size, size)
	if err != nil {
		panic(fmt.Sprintf("dataset: image size %d: %v", size, err))
	}
	base := rand.New(rand.NewSource(int64(topic)*104729 + 17))
	inst := rand.New(rand.NewSource(instanceSeed))
	// Topic-specific layered pattern: a handful of soft rectangles and
	// gradients whose geometry is fixed per topic.
	type blob struct{ x, y, w, h, v float64 }
	blobs := make([]blob, 6)
	for i := range blobs {
		blobs[i] = blob{
			x: base.Float64() * float64(size),
			y: base.Float64() * float64(size),
			w: (0.1 + base.Float64()*0.4) * float64(size),
			h: (0.1 + base.Float64()*0.4) * float64(size),
			v: base.Float64(),
		}
	}
	gx, gy := base.Float64()-0.5, base.Float64()-0.5
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := 0.5 + gx*float64(x)/float64(size) + gy*float64(y)/float64(size)
			for _, b := range blobs {
				if float64(x) >= b.x && float64(x) < b.x+b.w && float64(y) >= b.y && float64(y) < b.y+b.h {
					v = 0.7*v + 0.3*b.v
				}
			}
			v += (inst.Float64() - 0.5) * 0.15
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			im.Set(x, y, v)
		}
	}
	return im
}

// HolidaysParams configures the retrieval benchmark generator.
type HolidaysParams struct {
	// Groups is the number of near-duplicate scenes (the real Holidays has
	// 500 groups over 1491 photos).
	Groups int
	// PerGroup is the images per scene including the query; 0 defaults to 3.
	PerGroup int
	// ImageSize is the square image side; 0 defaults to 64.
	ImageSize int
	// Seed drives all randomness.
	Seed int64
}

// QuerySpec pairs a query object with the ids of its relevant results.
type QuerySpec struct {
	Query    *core.Object
	Relevant []string
}

// HolidaysSet is a generated retrieval benchmark.
type HolidaysSet struct {
	// Objects is the indexed corpus (queries are NOT included, matching the
	// Holidays protocol where the query is excluded from its own ranking).
	Objects []*core.Object
	// Queries holds one query per group with its ground truth.
	Queries []QuerySpec
}

// Holidays generates a deterministic near-duplicate retrieval benchmark.
func Holidays(p HolidaysParams) *HolidaysSet {
	if p.PerGroup == 0 {
		p.PerGroup = 3
	}
	if p.ImageSize == 0 {
		p.ImageSize = 64
	}
	rng := rand.New(rand.NewSource(p.Seed))
	set := &HolidaysSet{}
	for g := 0; g < p.Groups; g++ {
		base := sceneImage(p.ImageSize, rng.Int63())
		queryImg := perturb(base, rng.Int63(), 0.03)
		var relevant []string
		for v := 1; v < p.PerGroup; v++ {
			id := fmt.Sprintf("holiday-g%03d-v%d", g, v)
			set.Objects = append(set.Objects, &core.Object{
				ID:    id,
				Owner: "curator",
				Image: perturb(base, rng.Int63(), 0.06),
			})
			relevant = append(relevant, id)
		}
		set.Queries = append(set.Queries, QuerySpec{
			Query:    &core.Object{ID: fmt.Sprintf("holiday-q%03d", g), Image: queryImg},
			Relevant: relevant,
		})
	}
	return set
}

// sceneImage renders one unique scene.
func sceneImage(size int, seed int64) *imaging.Image {
	return TopicImage(size, int(seed%100000), seed)
}

// perturb returns a noisy, brightness-shifted, slightly translated copy —
// the photometric/geometric variation between shots of one holiday scene.
func perturb(src *imaging.Image, seed int64, noise float64) *imaging.Image {
	rng := rand.New(rand.NewSource(seed))
	dst, err := imaging.NewImage(src.W, src.H)
	if err != nil {
		panic(fmt.Sprintf("dataset: perturb: %v", err))
	}
	dx := rng.Intn(3) - 1
	dy := rng.Intn(3) - 1
	bright := (rng.Float64() - 0.5) * 0.1
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			v := src.At(x+dx, y+dy) + bright + (rng.Float64()-0.5)*noise*2
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			dst.Set(x, y, v)
		}
	}
	return dst
}

// SyntheticTextParams configures SyntheticText.
type SyntheticTextParams struct {
	// N is the number of documents.
	N int
	// VocabSize is the number of distinct words the Zipf source can emit;
	// 0 defaults to 2000. Large vocabularies create the long tail of
	// singleton keywords that makes leakage-abuse attacks hard.
	VocabSize int
	// WordsPerDoc is the mean document length; 0 defaults to 12.
	WordsPerDoc int
	// Seed drives all randomness.
	Seed int64
}

// SyntheticText generates text-only documents over a large Zipf-distributed
// vocabulary — the workload for the leakage-abuse attack experiment, whose
// outcome depends on vocabulary statistics rather than topical structure.
func SyntheticText(p SyntheticTextParams) []*core.Object {
	if p.VocabSize == 0 {
		p.VocabSize = 2000
	}
	if p.WordsPerDoc == 0 {
		p.WordsPerDoc = 12
	}
	rng := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rng, 1.2, 2.0, uint64(p.VocabSize-1))
	objs := make([]*core.Object, 0, p.N)
	for i := 0; i < p.N; i++ {
		n := p.WordsPerDoc/2 + rng.Intn(p.WordsPerDoc)
		if n < 3 {
			n = 3
		}
		body := ""
		for j := 0; j < n; j++ {
			if body != "" {
				body += " "
			}
			body += fmt.Sprintf("word%04d", zipf.Uint64())
		}
		objs = append(objs, &core.Object{
			ID:    fmt.Sprintf("text-%06d", i),
			Owner: "user1",
			Text:  body,
		})
	}
	return objs
}
