package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("server_requests_total", "kind", "search")).Add(2)
	reg.Histogram("request_seconds").Observe(0.003)

	d, err := ServeDebug("127.0.0.1:0", reg, Nop())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, `server_requests_total{kind="search"} 2`) {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE server_requests_total counter") {
		t.Errorf("/metrics missing TYPE header:\n%s", metrics)
	}
	if !strings.Contains(metrics, "request_seconds_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", metrics)
	}
	if !strings.Contains(metrics, "go_goroutines") {
		t.Errorf("/metrics missing runtime metrics:\n%s", metrics)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(getBody(t, base+"/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Counters["server_requests_total{kind=search}"] != 2 {
		t.Errorf("/metrics.json counters = %+v", snap.Counters)
	}

	vars := getBody(t, base+"/debug/vars")
	if !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars missing memstats")
	}

	if !strings.Contains(getBody(t, base+"/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}

	if !strings.Contains(getBody(t, base+"/healthz"), "ok") {
		t.Error("/healthz not ok")
	}
}
