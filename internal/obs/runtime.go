package obs

import "runtime"

// UpdateRuntimeMetrics refreshes the Go runtime gauges in reg from the
// current process state. The debug server calls it on every /metrics and
// /metrics.json scrape, so runtime health (goroutine count, heap size, GC
// behaviour) is sampled exactly as often as it is observed and costs
// nothing between scrapes. Monotonic quantities (GC cycles, total pause)
// are exposed as gauges because they are set from runtime snapshots rather
// than accumulated through the Counter API.
func UpdateRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	reg.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.Gauge("go_heap_inuse_bytes").Set(int64(ms.HeapInuse))
	reg.Gauge("go_heap_objects").Set(int64(ms.HeapObjects))
	reg.Gauge("go_sys_bytes").Set(int64(ms.Sys))
	reg.Gauge("go_gc_cycles_total").Set(int64(ms.NumGC))
	reg.Gauge("go_gc_pause_nanos_total").Set(int64(ms.PauseTotalNs))
	reg.Gauge("go_next_gc_bytes").Set(int64(ms.NextGC))
}
