package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	levelOff // internal: above every real level, used by Nop
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a level name to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger is a leveled structured logger emitting one `key=value` line per
// event:
//
//	time=2026-08-06T12:00:00.000Z level=info msg="serving" addr=127.0.0.1:7709
//
// It replaces the bare *log.Logger plumbing of the server path: the fixed
// shape makes server logs greppable per field and machine-parsable without a
// log pipeline. A nil *Logger discards everything, so callers never need
// nil checks.
//
// With derives a child logger carrying pre-rendered context pairs (e.g. the
// remote address and protocol version of one connection); children share the
// parent's writer, lock and level, so SetLevel on any of them affects all.
type Logger struct {
	sink *logSink
	// ctx is the pre-rendered " k=v" context suffix added after msg.
	ctx string
}

// logSink is the shared output state behind a family of With-derived loggers.
type logSink struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

// NewLogger writes events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{sink: &logSink{w: w}}
	l.sink.min.Store(int32(min))
	return l
}

// Nop returns a logger that discards everything.
func Nop() *Logger {
	l := &Logger{sink: &logSink{w: io.Discard}}
	l.sink.min.Store(int32(levelOff))
	return l
}

// With returns a logger that adds the given key/value pairs to every event,
// after msg and before per-event pairs. Context renders once, here, not per
// event.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.ctx)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		b.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
	}
	return &Logger{sink: l.sink, ctx: b.String()}
}

// SetLevel changes the minimum emitted level at runtime (for the whole
// With-family sharing this logger's output).
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.sink.min.Store(int32(min))
	}
}

// Enabled reports whether events at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.sink.min.Load())
}

// Debug logs a debug event with alternating key/value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }

// Info logs an informational event.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv...) }

// Warn logs a warning.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv...) }

// Error logs an error event.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv...) }

func (l *Logger) log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString("time=")
	b.WriteString(timeNow().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(l.ctx)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		b.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
	}
	if len(kv)%2 != 0 { // dangling key: surface it rather than drop it
		b.WriteString(" !BADKEY=")
		b.WriteString(quoteValue(fmt.Sprint(kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	l.sink.mu.Lock()
	defer l.sink.mu.Unlock()
	_, _ = io.WriteString(l.sink.w, b.String())
}

// quoteValue quotes values containing spaces, quotes or control characters
// so lines stay splittable on spaces.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r == ' ' || r == '"' || r == '=' || r < 0x20 {
			return strconv.Quote(s)
		}
	}
	return s
}
