package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): `# TYPE` headers, label values quoted and escaped,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. The internal metric identity `name{k=v,k2=v2}` produced by L()
// is parsed back into base name + label pairs here, at the exposition
// boundary, so hot-path metric updates never pay for quoting.
//
// The legacy exposition (WriteMetrics, unquoted labels and quantile lines)
// remains for mie-bench's human-oriented dumps; scrapers get this one.

// promSeries is one parsed metric identity: base name plus ordered labels.
type promSeries struct {
	name   string
	labels [][2]string
}

// parseSeries splits `base{k=v,k2=v2}` into its base name and label pairs.
func parseSeries(id string) promSeries {
	i := strings.IndexByte(id, '{')
	if i < 0 {
		return promSeries{name: id}
	}
	s := promSeries{name: id[:i]}
	body := strings.TrimSuffix(id[i+1:], "}")
	for _, pair := range strings.Split(body, ",") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			s.labels = append(s.labels, [2]string{k, v})
		}
	}
	return s
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// render writes the series with optional extra labels (e.g. le) appended.
func (s promSeries) render(suffix string, extra ...[2]string) string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteString(suffix)
	labels := append(append([][2]string{}, s.labels...), extra...)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(kv[0])
			b.WriteString(`="`)
			b.WriteString(promEscape(kv[1]))
			b.WriteString(`"`)
		}
		b.WriteByte('}')
	}
	return b.String()
}

// promEntry is one series' exposition lines; key orders series within a
// family (the original labeled identity sorts deterministically).
type promEntry struct {
	key   string
	lines []string
}

// promFamily is every series sharing one base name and type.
type promFamily struct {
	name    string
	typ     string
	entries []promEntry
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format. Families are sorted by name, series within a family by label set,
// and histogram buckets stay in ascending-bound order — output is stable
// across scrapes (modulo values), the property the golden test pins down.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	fams := make(map[string]*promFamily)
	add := func(name, typ, key string, lines ...string) {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		f.entries = append(f.entries, promEntry{key: key, lines: lines})
	}
	for id, v := range snap.Counters {
		s := parseSeries(id)
		add(s.name, "counter", id, fmt.Sprintf("%s %d", s.render(""), v))
	}
	for id, v := range snap.Gauges {
		s := parseSeries(id)
		add(s.name, "gauge", id, fmt.Sprintf("%s %d", s.render(""), v))
	}
	for id, h := range snap.Histograms {
		s := parseSeries(id)
		lines := make([]string, 0, len(h.Buckets)+2)
		for _, bc := range h.Buckets {
			lines = append(lines, fmt.Sprintf("%s %d", s.render("_bucket", [2]string{"le", bc.Le}), bc.Count))
		}
		lines = append(lines,
			fmt.Sprintf("%s %s", s.render("_sum"), formatFloat(h.Sum)),
			fmt.Sprintf("%s %d", s.render("_count"), h.Count))
		add(s.name, "histogram", id, lines...)
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.entries, func(i, j int) bool { return f.entries[i].key < f.entries[j].key })
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, e := range f.entries {
			for _, line := range e.lines {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
