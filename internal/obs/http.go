package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the opt-in HTTP observability endpoint of an MIE process
// (mie-server's -debug-addr flag). It exposes:
//
//	/metrics     plain-text metric exposition of the bound registry
//	/metrics.json  the same snapshot as JSON (mie-bench's BENCH_obs.json shape)
//	/debug/vars  expvar (Go runtime memstats plus published vars)
//	/debug/pprof the full net/http/pprof suite (CPU/heap/goroutine profiles)
//	/healthz     liveness probe
//
// It binds its own listener so it can never contend with the wire protocol
// port, and must only be exposed on trusted interfaces: profiles and metrics
// leak operational patterns (not plaintexts — the server never has those —
// but access frequencies are exactly the leakage the paper's §IV analysis
// bounds, so don't hand them to untrusted observers).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

var expvarOnce sync.Once

// ServeDebug starts a debug server on addr (use ":0" for an ephemeral port).
// The registry snapshot is also published as the expvar "mie" on first call.
func ServeDebug(addr string, reg *Registry, logger *Logger) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	expvarOnce.Do(func() {
		expvar.Publish("mie", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteMetrics(w); err != nil {
			logger.Warn("metrics exposition failed", "err", err)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			logger.Warn("metrics json failed", "err", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug server exited", "err", err)
		}
	}()
	logger.Info("debug server listening", "addr", ln.Addr().String())
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the debug server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
