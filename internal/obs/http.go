package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the opt-in HTTP observability endpoint of an MIE process
// (mie-server's -debug-addr flag). It exposes:
//
//	/metrics       Prometheus text exposition of the bound registry
//	/metrics.json  the same snapshot as JSON (mie-bench's BENCH_obs.json shape)
//	/debug/traces  completed request traces (JSON list; ?trace=<id> for one,
//	               &format=tree for an indented tree) when a tracer is bound
//	/debug/vars    expvar (Go runtime memstats plus published vars)
//	/debug/pprof   the full net/http/pprof suite (CPU/heap/goroutine profiles)
//	/healthz       liveness probe
//
// It binds its own listener so it can never contend with the wire protocol
// port, and must only be exposed on trusted interfaces: profiles, metrics
// and traces leak operational patterns (not plaintexts — the server never
// has those — but access frequencies are exactly the leakage the paper's
// §IV analysis bounds, so don't hand them to untrusted observers).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugOption configures ServeDebug.
type DebugOption func(*debugConfig)

type debugConfig struct {
	tracer   *Tracer
	handlers map[string]http.Handler
}

// WithTracer exposes the tracer's completed-trace ring at /debug/traces.
func WithTracer(t *Tracer) DebugOption {
	return func(c *debugConfig) { c.tracer = t }
}

// WithHandler mounts an extra handler on the debug mux — how mie-server
// attaches /debug/leakage without obs importing the engine.
func WithHandler(pattern string, h http.Handler) DebugOption {
	return func(c *debugConfig) {
		if c.handlers == nil {
			c.handlers = make(map[string]http.Handler)
		}
		c.handlers[pattern] = h
	}
}

var expvarOnce sync.Once

// ServeDebug starts a debug server on addr (use ":0" for an ephemeral port).
// The registry snapshot is also published as the expvar "mie" on first call.
func ServeDebug(addr string, reg *Registry, logger *Logger, opts ...DebugOption) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	var cfg debugConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	expvarOnce.Do(func() {
		expvar.Publish("mie", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		UpdateRuntimeMetrics(reg)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			logger.Warn("metrics exposition failed", "err", err)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		UpdateRuntimeMetrics(reg)
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			logger.Warn("metrics json failed", "err", err)
		}
	})
	if cfg.tracer != nil {
		mux.Handle("/debug/traces", TraceHandler(cfg.tracer))
	}
	for pattern, h := range cfg.handlers {
		mux.Handle(pattern, h)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug server exited", "err", err)
		}
	}()
	logger.Info("debug server listening", "addr", ln.Addr().String())
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the debug server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// traceSummary is one row of the /debug/traces listing.
type traceSummary struct {
	TraceID    string  `json:"trace_id"`
	Root       string  `json:"root"`
	StartUnix  int64   `json:"start_unix_nano"`
	DurationMs float64 `json:"duration_ms"`
	Reason     string  `json:"reason"`
	Spans      int     `json:"spans"`
}

// TraceHandler serves a tracer's completed-trace ring: a JSON summary list
// by default, one full trace with ?trace=<hex id> (its indented tree with
// &format=tree).
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if idStr := r.URL.Query().Get("trace"); idStr != "" {
			id, err := ParseTraceID(idStr)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			tr, ok := t.Get(id)
			if !ok {
				http.Error(w, "trace not found (evicted or never kept)", http.StatusNotFound)
				return
			}
			if r.URL.Query().Get("format") == "tree" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprint(w, RenderTraceTree(tr))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tr)
			return
		}
		traces := t.Traces()
		out := make([]traceSummary, 0, len(traces))
		for _, tr := range traces {
			out = append(out, traceSummary{
				TraceID:    FormatTraceID(tr.TraceID),
				Root:       tr.Root,
				StartUnix:  tr.StartUnixNano,
				DurationMs: float64(tr.DurationNanos) / 1e6,
				Reason:     tr.Reason,
				Spans:      len(tr.Spans),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
