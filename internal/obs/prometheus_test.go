package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition output: family ordering by
// name, series ordering within a family, bucket order by ascending bound
// (NOT lexical — le="10" must follow le="2.5"), label quoting and escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(L("requests_total", "kind", "search")).Add(3)
	r.Counter(L("requests_total", "kind", "update")).Add(1)
	r.Counter("plain_total").Add(7)
	r.Gauge(L("repositories", "shard", "a")).Set(2)
	// Label values exercising every escape: backslash, quote, newline.
	r.Counter(L("weird_total", "path", `C:\tmp`, "msg", "say \"hi\"\nbye")).Inc()
	h := r.Histogram(L("latency_seconds", "op", "search"), 0.5, 2.5, 10)
	h.Observe(0.25) // le=0.5
	h.Observe(3)    // le=10
	h.Observe(99)   // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE latency_seconds histogram
latency_seconds_bucket{op="search",le="0.5"} 1
latency_seconds_bucket{op="search",le="2.5"} 1
latency_seconds_bucket{op="search",le="10"} 2
latency_seconds_bucket{op="search",le="+Inf"} 3
latency_seconds_sum{op="search"} 102.25
latency_seconds_count{op="search"} 3
# TYPE plain_total counter
plain_total 7
# TYPE repositories gauge
repositories{shard="a"} 2
# TYPE requests_total counter
requests_total{kind="search"} 3
requests_total{kind="update"} 1
# TYPE weird_total counter
weird_total{path="C:\\tmp",msg="say \"hi\"\nbye"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Output must be byte-stable across scrapes (map iteration must not leak
	// into the ordering).
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != b.String() {
			t.Fatalf("scrape %d differs:\n%s", i, again.String())
		}
	}
}
