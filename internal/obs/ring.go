package obs

import (
	"sort"
	"sync/atomic"
)

// traceRing is a bounded lock-free ring of completed traces. Writers claim a
// slot with one atomic fetch-add and publish the trace with one atomic
// pointer store; a full ring overwrites the oldest entry. Readers snapshot
// whatever is published without blocking writers — a reader racing a writer
// sees either the old or the new trace in a slot, never a torn one, which is
// exactly the consistency a debugging endpoint needs.
type traceRing struct {
	slots []atomic.Pointer[Trace]
	seq   atomic.Uint64
	mask  uint64
}

// newTraceRing creates a ring holding at least capacity traces (rounded up
// to a power of two so slot selection is a mask, not a modulo).
func newTraceRing(capacity int) *traceRing {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &traceRing{slots: make([]atomic.Pointer[Trace], n), mask: uint64(n - 1)}
}

// push publishes one completed trace, evicting the oldest if full.
func (r *traceRing) push(t *Trace) {
	i := r.seq.Add(1) - 1
	r.slots[i&r.mask].Store(t)
}

// get returns the most recently pushed trace with the given id, if any.
func (r *traceRing) get(traceID uint64) *Trace {
	var best *Trace
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.TraceID == traceID {
			if best == nil || t.StartUnixNano > best.StartUnixNano {
				best = t
			}
		}
	}
	return best
}

// snapshot returns the published traces, most recent first.
func (r *traceRing) snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano > out[j].StartUnixNano })
	return out
}
