package obs

import (
	"context"
	"time"
)

// timeNow is swappable for deterministic span tests.
var timeNow = time.Now

// Span measures the wall time of one named phase and records it into a
// registry histogram `phase_seconds{phase=<path>}` when ended. Spans nest:
// a child's path is `parent/child`, so one Search RPC decomposes into
// `rpc/search` -> `rpc/search/decode` -> ... and the registry accumulates a
// latency distribution per phase path. This is how the repo reproduces the
// paper's phase-level breakdowns (client encode vs. cloud train/index/search)
// on live traffic instead of in one-off experiments.
//
// When the surrounding context carries an ActiveTrace (see trace.go), a span
// additionally records itself into the trace with a process-unique span id
// and its parent's id — the cross-process span tree. The metrics path and
// the trace tree are deliberately decoupled: StartSpan always begins a fresh
// metrics path (so `repo/search` stays `repo/search` whether or not an RPC
// span encloses it), while trace parentage flows through the context.
//
// Spans are cheap (two time.Now calls and one histogram observation, plus
// one id and one record when traced) and intentionally not goroutine-safe: a
// span belongs to the goroutine that started it. A nil *Span is a valid
// no-op, so instrumented code does not need nil registry checks.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
	ended bool

	// trace linkage; nil/zero when the request is untraced.
	tr       *ActiveTrace
	id       uint64
	parentID uint64
	errMsg   string
}

// StartSpan begins a root phase span (a fresh metrics path) and attaches it
// to the returned context so nested StartSpan/ChildContext calls parent
// under it in the trace tree. A nil registry yields a no-op span and the
// context unchanged.
func StartSpan(ctx context.Context, reg *Registry, name string) (context.Context, *Span) {
	if reg == nil {
		return ctx, nil
	}
	s := &Span{reg: reg, path: name, start: timeNow()}
	if at := traceFrom(ctx); at != nil {
		s.tr = at
		s.id = newSpanID()
		if parent := SpanFromContext(ctx); parent != nil && parent.tr == at {
			s.parentID = parent.id
		} else if at.rootID.Load() == 0 {
			// First span of this side of the trace: parent under the remote
			// caller's span so merged client+server trees nest.
			s.parentID = at.remoteParent
		}
		at.rootID.CompareAndSwap(0, s.id)
		ctx = context.WithValue(ctx, spanCtxKey{}, s)
	}
	return ctx, s
}

// Child begins a nested span whose metrics path extends the parent's and
// whose trace parent is the parent span. Use ChildContext when downstream
// code must see the child via the context.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{reg: s.reg, path: s.path + "/" + name, start: timeNow()}
	if s.tr != nil {
		c.tr = s.tr
		c.id = newSpanID()
		c.parentID = s.id
	}
	return c
}

// ChildContext is Child plus context attachment: the returned context
// carries the child span, so spans started under it (possibly on the other
// side of an API boundary) nest beneath it in the trace.
func (s *Span) ChildContext(ctx context.Context, name string) (context.Context, *Span) {
	c := s.Child(name)
	if c != nil && c.tr != nil {
		ctx = context.WithValue(ctx, spanCtxKey{}, c)
	}
	return ctx, c
}

// Path returns the span's full phase path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// SetError marks the span failed; the message lands in the trace record and
// makes the whole trace eligible for tail capture.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End stops the span, records its duration into the registry (and into the
// trace, when traced) and returns it. End is idempotent; only the first
// call records.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := timeNow().Sub(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.reg.Histogram(L("phase_seconds", "phase", s.path)).Observe(d.Seconds())
	if s.tr != nil {
		s.tr.record(SpanRecord{
			SpanID:        s.id,
			ParentID:      s.parentID,
			Name:          s.path,
			StartUnixNano: s.start.UnixNano(),
			DurationNanos: int64(d),
			Err:           s.errMsg,
		})
	}
	return d
}

// Time runs fn under a span named name (nested under s if s is non-nil) and
// returns its duration — the one-liner form for straight-line phases.
func (s *Span) Time(name string, fn func()) time.Duration {
	child := s.Child(name)
	fn()
	return child.End()
}
