package obs

import "time"

// timeNow is swappable for deterministic span tests.
var timeNow = time.Now

// Span measures the wall time of one named phase and records it into a
// registry histogram `phase_seconds{phase=<path>}` when ended. Spans nest:
// a child's path is `parent/child`, so one Search RPC decomposes into
// `rpc/search` -> `rpc/search/decode` -> ... and the registry accumulates a
// latency distribution per phase path. This is how the repo reproduces the
// paper's phase-level breakdowns (client encode vs. cloud train/index/search)
// on live traffic instead of in one-off experiments.
//
// Spans are cheap (two time.Now calls and one histogram observation) and
// intentionally not goroutine-safe: a span belongs to the goroutine that
// started it. A nil *Span is a valid no-op, so instrumented code does not
// need nil registry checks.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
	ended bool
}

// StartSpan begins a root phase span. A nil registry yields a no-op span.
func StartSpan(reg *Registry, name string) *Span {
	if reg == nil {
		return nil
	}
	return &Span{reg: reg, path: name, start: timeNow()}
}

// Child begins a nested span whose path extends the parent's.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: timeNow()}
}

// Path returns the span's full phase path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End stops the span, records its duration into the registry and returns it.
// End is idempotent; only the first call records.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := timeNow().Sub(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.reg.Histogram(L("phase_seconds", "phase", s.path)).Observe(d.Seconds())
	return d
}

// Time runs fn under a span named name (nested under s if s is non-nil) and
// returns its duration — the one-liner form for straight-line phases.
func (s *Span) Time(name string, fn func()) time.Duration {
	child := s.Child(name)
	fn()
	return child.End()
}
