// Package obs is the observability substrate of the MIE reproduction: a
// concurrent metrics registry (counters, gauges, fixed-bucket latency
// histograms), lightweight phase spans for attributing wall time the way the
// paper's Tables 2-3 and Figures 5-8 do (client encode vs. cloud
// train/index/search), a leveled key=value logger, and an opt-in HTTP debug
// server exposing /metrics, /debug/vars and net/http/pprof.
//
// The package is stdlib-only by design: the reproduction must run in
// hermetic environments, and the exposition format is a plain-text subset of
// the Prometheus format so standard scrapers still understand it.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// defaultRegistry is the process-wide registry. Core, server and client
// instrumentation all record here unless explicitly configured otherwise, so
// one /metrics endpoint shows the whole pipeline (client encode through cloud
// search), mirroring how the paper attributes end-to-end time.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Registry is a concurrent collection of named metrics. Metric handles are
// created on first use and live for the registry's lifetime; lookups take a
// read lock, updates are lock-free atomics.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// L composes a metric name with label pairs: L("requests_total", "kind",
// "search") -> `requests_total{kind=search}`. Labels are part of the metric
// identity; callers must pass them in a consistent order.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (sizes, in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta (use negative n to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultDurationBuckets spans 100µs to 60s, the range between one index
// probe and a paper-scale Hom-MSSE training run. Values are upper bounds in
// seconds; observations beyond the last bound land in the implicit +Inf
// bucket.
var DefaultDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram of float64 observations (by
// convention, seconds). Observation is lock-free; Snapshot gives a
// consistent-enough view for monitoring (buckets are read individually, so a
// snapshot taken during a burst may be off by in-flight observations).
type Histogram struct {
	bounds []float64       // sorted upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultDurationBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket; values in the overflow bucket report the
// largest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if seen+n >= rank && n > 0 {
			if i >= len(h.bounds) { // overflow bucket: no finite upper bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - seen) / n
			return lo + frac*(h.bounds[i]-lo)
		}
		seen += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the histogram with the given name.
// Bucket bounds are fixed at creation; later calls ignore the bounds
// argument. Empty bounds take DefaultDurationBuckets.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// HistogramSnapshot is the read-out of one histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket; Le is the inclusive upper
// bound ("+Inf" for the overflow bucket).
type BucketCount struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped for
// JSON serialization (mie-bench's BENCH_obs.json).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, Count: cum})
	}
	return s
}

// Snapshot copies out every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteMetrics writes a plain-text exposition of every metric, sorted by
// name: `name value` lines for counters and gauges; `_count`, `_sum`,
// cumulative `_bucket{le=...}` and quantile lines for histograms.
func (r *Registry) WriteMetrics(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(&b, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(&b, "%s %d\n", name, snap.Gauges[name])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := snap.Histograms[name]
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_count"), h.Count)
		fmt.Fprintf(&b, "%s %s\n", suffixed(name, "_sum"), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s %s\n", withLabel(name, "quantile", "0.5"), formatFloat(h.P50))
		fmt.Fprintf(&b, "%s %s\n", withLabel(name, "quantile", "0.95"), formatFloat(h.P95))
		fmt.Fprintf(&b, "%s %s\n", withLabel(name, "quantile", "0.99"), formatFloat(h.P99))
		for _, bc := range h.Buckets {
			fmt.Fprintf(&b, "%s %d\n", withLabel(suffixed(name, "_bucket"), "le", bc.Le), bc.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// suffixed inserts a suffix before the label braces: suffixed("a{k=v}",
// "_sum") -> "a_sum{k=v}".
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel appends one label, merging into existing braces.
func withLabel(name, key, value string) string {
	pair := key + "=" + value
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
