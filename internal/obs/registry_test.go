package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("reqs") != c {
		t.Error("second lookup returned a different counter")
	}
	g := reg.Gauge("inflight")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestLabelComposition(t *testing.T) {
	if got := L("reqs", "kind", "search", "code", "ok"); got != "reqs{kind=search,code=ok}" {
		t.Errorf("L = %q", got)
	}
	if got := L("plain"); got != "plain" {
		t.Errorf("L no labels = %q", got)
	}
	if got := suffixed("a{k=v}", "_sum"); got != "a_sum{k=v}" {
		t.Errorf("suffixed = %q", got)
	}
	if got := withLabel("a{k=v}", "le", "1"); got != "a{k=v,le=1}" {
		t.Errorf("withLabel = %q", got)
	}
	if got := withLabel("a", "le", "1"); got != "a{le=1}" {
		t.Errorf("withLabel bare = %q", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 0.01, 0.1, 1)
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 90*0.005 + 10*0.5
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within first bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within third bucket", p99)
	}
	// Overflow bucket: quantile clamps to the largest finite bound.
	h.Observe(100)
	if q := h.Quantile(1); q != 1 {
		t.Errorf("overflow quantile = %v, want 1", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotAndExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("requests_total", "kind", "search")).Add(3)
	reg.Gauge("repo_objects{repo=photos}").Set(12)
	reg.Histogram(L("request_seconds", "kind", "search"), 0.01, 0.1).Observe(0.05)

	snap := reg.Snapshot()
	if snap.Counters["requests_total{kind=search}"] != 3 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
	hs, ok := snap.Histograms["request_seconds{kind=search}"]
	if !ok || hs.Count != 1 {
		t.Fatalf("snapshot histograms = %+v", snap.Histograms)
	}
	if len(hs.Buckets) != 3 || hs.Buckets[len(hs.Buckets)-1].Le != "+Inf" {
		t.Errorf("buckets = %+v", hs.Buckets)
	}

	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"requests_total{kind=search} 3",
		"repo_objects{repo=photos} 12",
		"request_seconds_count{kind=search} 1",
		"request_seconds_bucket{kind=search,le=0.1} 1",
		"request_seconds{kind=search,quantile=0.99}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["requests_total{kind=search}"] != 3 {
		t.Errorf("JSON round-trip counters = %+v", round.Counters)
	}
}
