package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	mrand "math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing half of obs: one Search/Update/Train
// produces a single span tree spanning the client operation, the wire
// transport, the server dispatch, the engine phases and the WAL append —
// across processes. A trace is identified by a random 64-bit TraceID carried
// in the wire envelope; spans attach to context.Context and parent
// themselves automatically, so instrumented layers never thread span handles
// by hand.
//
// Sampling is two-stage. Head-based: at trace start a probabilistic decision
// (Tracer sample rate) or an explicit force (mie-client -trace) marks the
// trace kept-no-matter-what; the decision propagates on the wire so client
// and server keep the same traces. Tail-based: when a slow-request threshold
// is configured, every request collects spans and the keep decision is made
// at the end — slow or errored requests are captured even when the head
// sampler passed on them. Completed traces land in a bounded lock-free ring
// (see ring.go) served by /debug/traces.

// maxSpansPerTrace bounds one trace's span list so a pathological request
// (or an instrumentation bug in a loop) cannot grow without bound.
const maxSpansPerTrace = 512

// idRand is the process-local generator for trace and span ids, seeded from
// crypto/rand so two processes (client and server) never collide.
var idRand = func() *mrand.Rand {
	var seed [16]byte
	if _, err := crand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:8], uint64(time.Now().UnixNano()))
	}
	var s mrand.PCG
	s.Seed(binary.LittleEndian.Uint64(seed[:8]), binary.LittleEndian.Uint64(seed[8:]))
	return mrand.New(&s)
}()

var idMu sync.Mutex

func newTraceID() uint64 {
	idMu.Lock()
	defer idMu.Unlock()
	for {
		if id := idRand.Uint64(); id != 0 {
			return id
		}
	}
}

func newSpanID() uint64 {
	idMu.Lock()
	defer idMu.Unlock()
	for {
		if id := idRand.Uint64(); id != 0 {
			return id
		}
	}
}

// FormatTraceID renders a trace id the way logs and endpoints print it.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID is the inverse of FormatTraceID.
func ParseTraceID(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSpace(s), 16, 64)
}

// SpanRecord is one finished span inside a trace: its identity, its parent,
// the metrics path it recorded under, and its wall-clock interval. Err is
// set when the instrumented operation failed.
type SpanRecord struct {
	SpanID        uint64 `json:"span_id"`
	ParentID      uint64 `json:"parent_id,omitempty"`
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	Err           string `json:"err,omitempty"`
}

// Trace is one completed, kept request trace.
type Trace struct {
	TraceID uint64 `json:"trace_id"`
	// Root is the name of the trace's root span (e.g. "rpc/search").
	Root          string `json:"root"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	// Reason records why the trace was kept: "sampled" (head sampling or an
	// explicit force), "slow" or "error" (tail capture).
	Reason string       `json:"reason"`
	Spans  []SpanRecord `json:"spans"`
}

// SpanContext is the wire-propagated identity of the calling span: the
// trace it belongs to, the span the remote side should parent under, and
// whether the head sampler already decided to keep the trace.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// context keys for the active trace and the current span.
type (
	traceCtxKey struct{}
	spanCtxKey  struct{}
)

// traceFrom returns the collecting trace attached to ctx, if any.
func traceFrom(ctx context.Context) *ActiveTrace {
	if ctx == nil {
		return nil
	}
	at, _ := ctx.Value(traceCtxKey{}).(*ActiveTrace)
	return at
}

// TraceFromContext returns the in-flight trace attached to ctx, if any.
// Callers that conditionally start their own trace (the client transport)
// use it to tell a caller-owned trace from none.
func TraceFromContext(ctx context.Context) *ActiveTrace { return traceFrom(ctx) }

// SpanFromContext returns the span attached to ctx, if any.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanContextFrom extracts the wire-propagatable identity of the current
// span in ctx. The zero SpanContext means "not traced" — including after the
// trace has been finished, so a stale derived context (e.g. a follow-up call
// reusing a request context) does not smear new spans into an old trace id.
func SpanContextFrom(ctx context.Context) SpanContext {
	s := SpanFromContext(ctx)
	if s == nil || s.tr == nil || s.tr.done.Load() {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tr.traceID, SpanID: s.id, Sampled: s.tr.sampled}
}

// ActiveTrace is one in-flight request trace collecting its spans. It is
// created by a Tracer at the request boundary and finished there too; spans
// in between attach through the context.
type ActiveTrace struct {
	tracer  *Tracer
	traceID uint64
	// remoteParent is the caller's span id on the other side of the wire;
	// the first local span parents under it so merged trees nest.
	remoteParent uint64
	// sampled records the head-sampling (or forced) keep decision.
	sampled bool
	start   time.Time
	rootID  atomic.Uint64
	// done mirrors finished for lock-free reads (SpanContextFrom).
	done atomic.Bool

	mu       sync.Mutex
	finished bool
	spans    []SpanRecord
}

// TraceID returns the trace's identity.
func (at *ActiveTrace) TraceID() uint64 {
	if at == nil {
		return 0
	}
	return at.traceID
}

// record appends one finished span. Safe for concurrent use (parallel
// modality lookups finish on their own goroutines).
func (at *ActiveTrace) record(rec SpanRecord) {
	at.mu.Lock()
	if !at.finished && len(at.spans) < maxSpansPerTrace {
		at.spans = append(at.spans, rec)
	}
	at.mu.Unlock()
}

// Finish completes the trace: the keep decision is made (head sample, slow
// threshold, error capture), a kept trace is published to the tracer's ring
// and returned, a dropped one returns nil. Finish is idempotent; only the
// first call publishes.
func (at *ActiveTrace) Finish() *Trace {
	if at == nil {
		return nil
	}
	at.mu.Lock()
	if at.finished {
		at.mu.Unlock()
		return nil
	}
	at.finished = true
	at.done.Store(true)
	spans := at.spans
	at.spans = nil
	at.mu.Unlock()

	t := at.tracer
	root := SpanRecord{Name: "?", StartUnixNano: at.start.UnixNano()}
	var errored bool
	rootID := at.rootID.Load()
	for _, rec := range spans {
		if rec.SpanID == rootID {
			root = rec
		}
		if rec.Err != "" {
			errored = true
		}
	}
	dur := time.Duration(root.DurationNanos)
	slow := t.SlowThreshold()
	reason := ""
	switch {
	case at.sampled:
		reason = "sampled"
	case errored:
		reason = "error"
	case slow > 0 && dur >= slow:
		reason = "slow"
	}
	if reason == "" {
		t.dropped.Inc()
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUnixNano < spans[j].StartUnixNano })
	tr := &Trace{
		TraceID:       at.traceID,
		Root:          root.Name,
		StartUnixNano: root.StartUnixNano,
		DurationNanos: root.DurationNanos,
		Reason:        reason,
		Spans:         spans,
	}
	t.ring.push(tr)
	t.reg.Counter(L("traces_kept_total", "reason", reason)).Inc()
	if slow > 0 && dur >= slow {
		t.logger().Warn("slow request",
			"trace", FormatTraceID(at.traceID),
			"root", root.Name,
			"duration_ms", float64(dur)/float64(time.Millisecond),
			"spans", len(spans),
			"err", root.Err)
	}
	return tr
}

// Tracer makes the sampling decisions and owns the completed-trace ring.
// One Tracer per process side (the Default suffices for almost everything);
// rate and threshold are adjustable at runtime.
type Tracer struct {
	reg  *Registry
	ring *traceRing
	log  atomic.Pointer[Logger]
	// rate is the head-sampling probability (float64 bits).
	rate atomic.Uint64
	// slowNanos > 0 enables tail capture of slow requests.
	slowNanos atomic.Int64

	started *Counter
	dropped *Counter
}

// DefaultTraceCapacity is the ring size of tracers that do not choose one.
const DefaultTraceCapacity = 256

// NewTracer creates a tracer recording its own counters into reg (nil means
// the default registry) with a ring of the given capacity (<=0 means
// DefaultTraceCapacity). The zero-configured tracer samples nothing and
// captures nothing; it only collects traces forced by a peer or caller.
func NewTracer(reg *Registry, capacity int) *Tracer {
	if reg == nil {
		reg = Default()
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{
		reg:     reg,
		ring:    newTraceRing(capacity),
		started: reg.Counter("traces_started_total"),
		dropped: reg.Counter("traces_dropped_total"),
	}
	return t
}

var defaultTracer = NewTracer(Default(), DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer. Server, client and CLI
// instrumentation share it unless explicitly configured otherwise, so one
// /debug/traces endpoint shows every request of the process.
func DefaultTracer() *Tracer { return defaultTracer }

// SetSampleRate sets the head-sampling probability in [0,1].
func (t *Tracer) SetSampleRate(r float64) {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.rate.Store(math.Float64bits(r))
}

// SampleRate returns the head-sampling probability.
func (t *Tracer) SampleRate() float64 { return math.Float64frombits(t.rate.Load()) }

// SetSlowThreshold enables (d > 0) or disables (d <= 0) tail-based capture
// of requests slower than d, and of errored requests.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNanos.Store(int64(d)) }

// SlowThreshold returns the tail-capture threshold (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNanos.Load()) }

// SetLogger routes the slow-request log line (nil disables it).
func (t *Tracer) SetLogger(l *Logger) { t.log.Store(l) }

func (t *Tracer) logger() *Logger {
	if l := t.log.Load(); l != nil {
		return l
	}
	return Nop()
}

// headSample rolls the head-sampling dice.
func (t *Tracer) headSample() bool {
	r := t.SampleRate()
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	idMu.Lock()
	v := idRand.Float64()
	idMu.Unlock()
	return v < r
}

// begin makes the collect/keep decisions and, when collecting, attaches a
// fresh ActiveTrace to ctx. A nil ActiveTrace return means the request is
// not being traced and ctx is unchanged — the zero-overhead path.
func (t *Tracer) begin(ctx context.Context, traceID, remoteParent uint64, sampled bool) (context.Context, *ActiveTrace) {
	if t == nil {
		return ctx, nil
	}
	t.started.Inc()
	if !sampled {
		sampled = t.headSample()
	}
	// Collect when the trace is kept for sure (sampled/forced) or when tail
	// capture may keep it at the end (slow threshold configured).
	if !sampled && t.SlowThreshold() <= 0 {
		return ctx, nil
	}
	if traceID == 0 {
		traceID = newTraceID()
	}
	at := &ActiveTrace{
		tracer:       t,
		traceID:      traceID,
		remoteParent: remoteParent,
		sampled:      sampled,
		start:        timeNow(),
	}
	return context.WithValue(ctx, traceCtxKey{}, at), at
}

// StartTrace begins a locally-originated trace under head sampling; use
// ForceTrace to bypass the dice (mie-client -trace). If ctx already carries
// a trace it is returned unchanged.
func (t *Tracer) StartTrace(ctx context.Context) (context.Context, *ActiveTrace) {
	if at := traceFrom(ctx); at != nil {
		return ctx, at
	}
	return t.begin(ctx, 0, 0, false)
}

// ForceTrace begins a locally-originated trace that is always kept.
func (t *Tracer) ForceTrace(ctx context.Context) (context.Context, *ActiveTrace) {
	if at := traceFrom(ctx); at != nil {
		return ctx, at
	}
	return t.begin(ctx, 0, 0, true)
}

// Join continues a trace arriving over the wire: the peer's TraceID and
// parent span id (both 0 for an untraced or v1 request) and its sampling
// decision. An untraced request still rolls this side's head sampler, so a
// server traces its share of v1 traffic too.
func (t *Tracer) Join(ctx context.Context, traceID, parentSpan uint64, sampled bool) (context.Context, *ActiveTrace) {
	return t.begin(ctx, traceID, parentSpan, sampled)
}

// Get returns a completed trace by id, if the ring still holds it.
func (t *Tracer) Get(traceID uint64) (*Trace, bool) {
	tr := t.ring.get(traceID)
	return tr, tr != nil
}

// Traces returns the completed traces in the ring, most recent first.
func (t *Tracer) Traces() []*Trace { return t.ring.snapshot() }

// RenderTraceTree renders a trace (or several merged trace fragments that
// share a TraceID — the client-side and server-side halves of one request)
// as an indented tree with per-span durations, for terminals and the
// /debug/traces?format=tree view.
func RenderTraceTree(traces ...*Trace) string {
	var all []SpanRecord
	var traceID uint64
	var reason string
	seen := make(map[uint64]bool)
	for _, t := range traces {
		if t == nil {
			continue
		}
		if traceID == 0 {
			traceID = t.TraceID
			reason = t.Reason
		}
		for _, s := range t.Spans {
			if s.SpanID != 0 && seen[s.SpanID] {
				continue
			}
			seen[s.SpanID] = true
			all = append(all, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%s)\n", FormatTraceID(traceID), reason)
	if len(all) == 0 {
		b.WriteString("  (no spans)\n")
		return b.String()
	}
	children := make(map[uint64][]SpanRecord)
	ids := make(map[uint64]bool, len(all))
	for _, s := range all {
		ids[s.SpanID] = true
	}
	var roots []SpanRecord
	for _, s := range all {
		if s.ParentID != 0 && ids[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(list []SpanRecord) {
		sort.Slice(list, func(i, j int) bool { return list[i].StartUnixNano < list[j].StartUnixNano })
	}
	order(roots)
	var walk func(s SpanRecord, prefix string, last bool)
	walk = func(s SpanRecord, prefix string, last bool) {
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		fmt.Fprintf(&b, "%s%s%s %.3fms", prefix, branch, s.Name, float64(s.DurationNanos)/1e6)
		if s.Err != "" {
			fmt.Fprintf(&b, " err=%q", s.Err)
		}
		b.WriteByte('\n')
		kids := children[s.SpanID]
		order(kids)
		for i, k := range kids {
			walk(k, prefix+cont, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		walk(r, "", i == len(roots)-1)
	}
	return b.String()
}
