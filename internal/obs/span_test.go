package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanRecordsPhaseHierarchy(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	timeNow = func() time.Time {
		now = now.Add(10 * time.Millisecond)
		return now
	}
	defer func() { timeNow = time.Now }()

	reg := NewRegistry()
	_, sp := StartSpan(context.Background(), reg, "rpc/search")
	child := sp.Child("decode")
	child.End()
	sp.Time("fusion", func() {})
	sp.End()

	for _, phase := range []string{"rpc/search", "rpc/search/decode", "rpc/search/fusion"} {
		h := reg.Histogram(L("phase_seconds", "phase", phase))
		if h.Count() != 1 {
			t.Errorf("phase %s count = %d, want 1", phase, h.Count())
		}
		if h.Sum() <= 0 {
			t.Errorf("phase %s sum = %v, want > 0", phase, h.Sum())
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	reg := NewRegistry()
	_, sp := StartSpan(context.Background(), reg, "p")
	sp.End()
	sp.End()
	if got := reg.Histogram(L("phase_seconds", "phase", "p")).Count(); got != 1 {
		t.Errorf("count after double End = %d, want 1", got)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	if d := sp.End(); d != 0 {
		t.Errorf("nil End = %v", d)
	}
	if sp.Child("x") != nil {
		t.Error("nil Child should stay nil")
	}
	sp.Time("y", func() {}) // must not panic
	if _, z := StartSpan(context.Background(), nil, "z"); z != nil {
		t.Error("StartSpan with nil registry should return nil span")
	}
}
