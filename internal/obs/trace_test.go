package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHeadSamplingDecision(t *testing.T) {
	tr := NewTracer(NewRegistry(), 8)

	// Rate 0, no slow threshold: the zero-overhead path — no trace attached.
	ctx, at := tr.StartTrace(context.Background())
	if at != nil || TraceFromContext(ctx) != nil {
		t.Fatal("rate-0 tracer attached a trace")
	}

	// Rate 1: every trace collected and kept as "sampled".
	tr.SetSampleRate(1)
	ctx, at = tr.StartTrace(context.Background())
	if at == nil {
		t.Fatal("rate-1 tracer did not start a trace")
	}
	_, sp := StartSpan(ctx, NewRegistry(), "root")
	sp.End()
	kept := at.Finish()
	if kept == nil || kept.Reason != "sampled" {
		t.Fatalf("kept = %+v, want reason sampled", kept)
	}
	if got, ok := tr.Get(kept.TraceID); !ok || got.Root != "root" {
		t.Fatalf("ring lookup = %+v, %v", got, ok)
	}

	// ForceTrace keeps regardless of rate.
	tr.SetSampleRate(0)
	_, at = tr.ForceTrace(context.Background())
	if at == nil || at.Finish() == nil {
		t.Fatal("forced trace was not kept")
	}
}

func TestTailCaptureSlowAndErrored(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	tr.SetSlowThreshold(time.Nanosecond) // everything with a measured root is slow

	// Unsampled but slow: collected because the threshold is set, kept as "slow".
	ctx, at := tr.StartTrace(context.Background())
	if at == nil {
		t.Fatal("slow-threshold tracer did not collect")
	}
	_, sp := StartSpan(ctx, reg, "slowop")
	time.Sleep(time.Millisecond)
	sp.End()
	if kept := at.Finish(); kept == nil || kept.Reason != "slow" {
		t.Fatalf("kept = %+v, want reason slow", kept)
	}

	// Errored request: kept as "error" even below the slow threshold.
	tr.SetSlowThreshold(time.Hour)
	ctx, at = tr.StartTrace(context.Background())
	_, sp = StartSpan(ctx, reg, "failop")
	sp.SetError(errors.New("boom"))
	sp.End()
	if kept := at.Finish(); kept == nil || kept.Reason != "error" {
		t.Fatalf("kept = %+v, want reason error", kept)
	}

	// Fast and clean under a high threshold: dropped.
	ctx, at = tr.StartTrace(context.Background())
	_, sp = StartSpan(ctx, reg, "fastop")
	sp.End()
	if kept := at.Finish(); kept != nil {
		t.Fatalf("fast clean request kept: %+v", kept)
	}
}

func TestFinishIdempotentAndStaleContext(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	tr.SetSampleRate(1)
	ctx, at := tr.StartTrace(context.Background())
	ctx, sp := StartSpan(ctx, reg, "op")
	if sc := SpanContextFrom(ctx); sc.TraceID != at.TraceID() || sc.SpanID == 0 || !sc.Sampled {
		t.Fatalf("live span context = %+v", sc)
	}
	sp.End()
	if at.Finish() == nil {
		t.Fatal("first Finish dropped the trace")
	}
	if at.Finish() != nil {
		t.Fatal("second Finish published again")
	}
	// A context derived before Finish must stop propagating the trace.
	if sc := SpanContextFrom(ctx); sc != (SpanContext{}) {
		t.Fatalf("stale context still propagates: %+v", sc)
	}
}

func TestRingEviction(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 4)
	tr.SetSampleRate(1)
	var first uint64
	for i := 0; i < 6; i++ {
		ctx, at := tr.StartTrace(context.Background())
		_, sp := StartSpan(ctx, reg, "op")
		sp.End()
		kept := at.Finish()
		if kept == nil {
			t.Fatal("trace dropped")
		}
		if i == 0 {
			first = kept.TraceID
		}
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("ring holds %d traces, want 4", got)
	}
	if _, ok := tr.Get(first); ok {
		t.Fatal("oldest trace survived eviction")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	tr.SetSampleRate(1)
	ctx, at := tr.StartTrace(context.Background())
	ctx, root := StartSpan(ctx, reg, "rpc/search")
	ectx, engine := root.ChildContext(ctx, "engine")
	_, leaf := StartSpan(ectx, reg, "repo/search")
	leaf.End()
	engine.End()
	root.End()
	kept := at.Finish()
	if kept == nil || len(kept.Spans) != 3 {
		t.Fatalf("kept = %+v", kept)
	}
	byName := map[string]SpanRecord{}
	for _, s := range kept.Spans {
		byName[s.Name] = s
	}
	if byName["rpc/search"].ParentID != 0 {
		t.Errorf("root has parent %d", byName["rpc/search"].ParentID)
	}
	if byName["rpc/search/engine"].ParentID != byName["rpc/search"].SpanID {
		t.Error("engine span not parented under root")
	}
	if byName["repo/search"].ParentID != byName["rpc/search/engine"].SpanID {
		t.Error("fresh-path span not parented under engine span")
	}
	if kept.Root != "rpc/search" {
		t.Errorf("root = %q", kept.Root)
	}
}

func TestJoinParentsUnderRemoteSpan(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	const traceID, remoteSpan = 0xabc, 0xdef
	ctx, at := tr.Join(context.Background(), traceID, remoteSpan, true)
	if at == nil || at.TraceID() != traceID {
		t.Fatalf("join = %+v", at)
	}
	_, sp := StartSpan(ctx, reg, "rpc/op")
	sp.End()
	kept := at.Finish()
	if kept == nil || kept.TraceID != traceID {
		t.Fatalf("kept = %+v", kept)
	}
	if kept.Spans[0].ParentID != remoteSpan {
		t.Errorf("first local span parents under %x, want remote %x", kept.Spans[0].ParentID, remoteSpan)
	}
}

func TestRenderTraceTreeMergesFragments(t *testing.T) {
	clientHalf := &Trace{
		TraceID: 0x1234,
		Root:    "cli/search",
		Reason:  "sampled",
		Spans: []SpanRecord{
			{SpanID: 1, Name: "cli/search", StartUnixNano: 100, DurationNanos: 5e6},
			{SpanID: 2, ParentID: 1, Name: "op/search", StartUnixNano: 200, DurationNanos: 4e6},
		},
	}
	serverHalf := &Trace{
		TraceID: 0x1234,
		Root:    "rpc/search",
		Reason:  "sampled",
		Spans: []SpanRecord{
			{SpanID: 3, ParentID: 2, Name: "rpc/search", StartUnixNano: 300, DurationNanos: 3e6},
			{SpanID: 4, ParentID: 3, Name: "rpc/search/engine", StartUnixNano: 400, DurationNanos: 2e6, Err: "boom"},
		},
	}
	out := RenderTraceTree(clientHalf, serverHalf)
	if !strings.HasPrefix(out, "trace 0000000000001234 (sampled)") {
		t.Errorf("header wrong:\n%s", out)
	}
	// The server fragment must nest under the client op span, not float as a
	// second root.
	want := []string{
		"└─ cli/search 5.000ms",
		"   └─ op/search 4.000ms",
		"      └─ rpc/search 3.000ms",
		`         └─ rpc/search/engine 2.000ms err="boom"`,
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	if len(lines) != len(want) {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}
