package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden", "k", "v")
	l.Info("served request", "kind", "search", "bytes", 123)
	l.Error("read failed", "err", "connection reset by peer")

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (debug filtered):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `level=info`) || !strings.Contains(lines[0], `msg="served request"`) ||
		!strings.Contains(lines[0], "kind=search") || !strings.Contains(lines[0], "bytes=123") {
		t.Errorf("info line = %q", lines[0])
	}
	if !strings.Contains(lines[1], `err="connection reset by peer"`) {
		t.Errorf("error line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "time=") {
		t.Errorf("line missing timestamp: %q", lines[0])
	}
}

func TestLoggerDanglingKey(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.Info("oops", "orphan")
	if !strings.Contains(buf.String(), "!BADKEY=orphan") {
		t.Errorf("dangling key not surfaced: %q", buf.String())
	}
}

func TestNilAndNopLogger(t *testing.T) {
	var l *Logger
	l.Info("must not panic")
	if l.Enabled(LevelError) {
		t.Error("nil logger should report disabled")
	}
	n := Nop()
	n.Error("discarded")
	if n.Enabled(LevelError) {
		t.Error("nop logger should report disabled")
	}
}

func TestSetLevelAndParse(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelError)
	l.Info("hidden")
	l.SetLevel(LevelDebug)
	l.Debug("visible")
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("got %d lines, want 1: %q", got, buf.String())
	}
	for name, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(name)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}
