package dpe

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mie/internal/crypto"
	"mie/internal/vec"
)

func testKey(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return k
}

// randomPair returns two unit-norm-bounded vectors at exactly Euclidean
// distance d from each other (d <= 1).
func randomPair(rng *rand.Rand, dim int, d float64) (p1, p2 []float64) {
	p1 = make([]float64, dim)
	dir := make([]float64, dim)
	for i := range p1 {
		p1[i] = rng.NormFloat64()
		dir[i] = rng.NormFloat64()
	}
	vec.Normalize(p1)
	vec.Scale(p1, 0.5) // keep points in a ball so distances stay <= 1
	vec.Normalize(dir)
	p2 = vec.Clone(p1)
	for i := range p2 {
		p2[i] += dir[i] * d
	}
	return p1, p2
}

func newTestDense(t *testing.T, threshold float64) *Dense {
	t.Helper()
	d, err := NewDense(testKey(1), DenseParams{InDim: 64, OutDim: 2048, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDenseValidation(t *testing.T) {
	tests := []struct {
		name   string
		params DenseParams
	}{
		{name: "zero in dim", params: DenseParams{InDim: 0, Threshold: 0.5}},
		{name: "negative out dim", params: DenseParams{InDim: 4, OutDim: -1, Threshold: 0.5}},
		{name: "zero threshold", params: DenseParams{InDim: 4, Threshold: 0}},
		{name: "threshold above one", params: DenseParams{InDim: 4, Threshold: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewDense(testKey(1), tt.params); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewDenseDefaultOutDim(t *testing.T) {
	d, err := NewDense(testKey(1), DenseParams{InDim: 64, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.OutDim() != 512 {
		t.Errorf("default OutDim = %d, want 512", d.OutDim())
	}
}

func TestDenseEncodeDeterministic(t *testing.T) {
	d := newTestDense(t, 0.5)
	rng := rand.New(rand.NewSource(1))
	p, _ := randomPair(rng, 64, 0)
	e1, err := d.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Equal(e2) {
		t.Error("same plaintext encoded to different encodings")
	}
}

func TestDenseEncodeKeyDependence(t *testing.T) {
	p := make([]float64, 64)
	for i := range p {
		p[i] = float64(i) / 128
	}
	d1, err := NewDense(testKey(1), DenseParams{InDim: 64, OutDim: 512, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense(testKey(2), DenseParams{InDim: 64, OutDim: 512, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := d1.Encode(p)
	e2, _ := d2.Encode(p)
	// Under different keys the encodings should look unrelated (~half bits differ).
	nh := vec.NormHamming(e1, e2)
	if nh < 0.35 || nh > 0.65 {
		t.Errorf("cross-key NormHamming = %v, want ~0.5", nh)
	}
}

func TestDenseEncodeDimensionCheck(t *testing.T) {
	d := newTestDense(t, 0.5)
	if _, err := d.Encode(make([]float64, 63)); !errors.Is(err, ErrBadDimension) {
		t.Errorf("err = %v, want ErrBadDimension", err)
	}
}

func TestDenseDistanceEncodingCheck(t *testing.T) {
	d := newTestDense(t, 0.5)
	if _, err := d.Distance(vec.NewBitVec(10), vec.NewBitVec(2048)); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("err = %v, want ErrBadEncoding", err)
	}
	if _, err := d.RawNormHamming(vec.NewBitVec(10), vec.NewBitVec(2048)); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("raw err = %v, want ErrBadEncoding", err)
	}
}

// TestDensePreservesSubThresholdDistances is the core Definition-1 property:
// for dp < t, DISTANCE(e1,e2) ~ dp.
func TestDensePreservesSubThresholdDistances(t *testing.T) {
	d := newTestDense(t, 0.5)
	rng := rand.New(rand.NewSource(42))
	for _, dp := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		var sum float64
		const trials = 20
		for i := 0; i < trials; i++ {
			p1, p2 := randomPair(rng, 64, dp)
			e1, err := d.Encode(p1)
			if err != nil {
				t.Fatal(err)
			}
			e2, err := d.Encode(p2)
			if err != nil {
				t.Fatal(err)
			}
			de, err := d.Distance(e1, e2)
			if err != nil {
				t.Fatal(err)
			}
			sum += de
		}
		mean := sum / trials
		if math.Abs(mean-dp) > 0.05+0.15*dp {
			t.Errorf("dp=%v: mean encoded distance %v, want ~%v", dp, mean, dp)
		}
	}
}

// TestDenseSaturatesAboveThreshold: for dp >= t the encoded distance pins
// near t and conveys no ordering information about the true distance.
func TestDenseSaturatesAboveThreshold(t *testing.T) {
	d := newTestDense(t, 0.5)
	rng := rand.New(rand.NewSource(43))
	means := make(map[float64]float64)
	for _, dp := range []float64{0.7, 0.85, 1.0} {
		var sum float64
		const trials = 20
		for i := 0; i < trials; i++ {
			p1, p2 := randomPair(rng, 64, dp)
			e1, _ := d.Encode(p1)
			e2, _ := d.Encode(p2)
			de, err := d.Distance(e1, e2)
			if err != nil {
				t.Fatal(err)
			}
			sum += de
		}
		means[dp] = sum / trials
	}
	for dp, m := range means {
		if m < 0.40 || m > 0.62 {
			t.Errorf("dp=%v: saturated distance %v, want near t=0.5", dp, m)
		}
	}
	// Saturated values should be close to each other (no ordering leak).
	if math.Abs(means[0.7]-means[1.0]) > 0.06 {
		t.Errorf("saturation not flat: de(0.7)=%v de(1.0)=%v", means[0.7], means[1.0])
	}
}

func TestDenseZeroDistance(t *testing.T) {
	d := newTestDense(t, 0.5)
	rng := rand.New(rand.NewSource(44))
	p, _ := randomPair(rng, 64, 0)
	e, _ := d.Encode(p)
	de, err := d.Distance(e, e)
	if err != nil {
		t.Fatal(err)
	}
	if de != 0 {
		t.Errorf("self distance = %v, want 0", de)
	}
}

// TestDenseMonotoneBelowThreshold: encoded distances must preserve ordering
// of plaintext distances in the sub-threshold regime.
func TestDenseMonotoneBelowThreshold(t *testing.T) {
	d := newTestDense(t, 0.5)
	rng := rand.New(rand.NewSource(45))
	prev := -1.0
	for _, dp := range []float64{0.05, 0.15, 0.25, 0.35, 0.45} {
		var sum float64
		const trials = 30
		for i := 0; i < trials; i++ {
			p1, p2 := randomPair(rng, 64, dp)
			e1, _ := d.Encode(p1)
			e2, _ := d.Encode(p2)
			de, _ := d.Distance(e1, e2)
			sum += de
		}
		mean := sum / trials
		if mean <= prev {
			t.Errorf("dp=%v: mean %v not greater than previous %v", dp, mean, prev)
		}
		prev = mean
	}
}

// TestDenseThresholdScaling checks the Definition-1 contract for a
// non-default threshold: distances below t track dp, above t pin near t.
func TestDenseThresholdScaling(t *testing.T) {
	d, err := NewDense(testKey(3), DenseParams{InDim: 32, OutDim: 2048, Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	sub := 0.15
	var sum float64
	const trials = 30
	for i := 0; i < trials; i++ {
		p1, p2 := randomPair(rng, 32, sub)
		e1, _ := d.Encode(p1)
		e2, _ := d.Encode(p2)
		de, _ := d.Distance(e1, e2)
		sum += de
	}
	if mean := sum / trials; math.Abs(mean-sub) > 0.06 {
		t.Errorf("t=0.25 dp=%v: mean %v", sub, mean)
	}
	sum = 0
	for i := 0; i < trials; i++ {
		p1, p2 := randomPair(rng, 32, 0.8)
		e1, _ := d.Encode(p1)
		e2, _ := d.Encode(p2)
		de, _ := d.Distance(e1, e2)
		sum += de
	}
	if mean := sum / trials; math.Abs(mean-0.25) > 0.06 {
		t.Errorf("t=0.25 dp=0.8: saturated mean %v, want ~0.25", mean)
	}
}

func TestSparseEncodeEquality(t *testing.T) {
	s := NewSparse(testKey(5))
	if s.Encode("cloud") != s.Encode("cloud") {
		t.Error("same keyword produced different tokens")
	}
	if s.Encode("cloud") == s.Encode("clouds") {
		t.Error("distinct keywords produced the same token")
	}
}

func TestSparseDistance(t *testing.T) {
	s := NewSparse(testKey(5))
	a, b := s.Encode("alpha"), s.Encode("alphb")
	if got := s.Distance(a, a); got != 0 {
		t.Errorf("Distance(a,a) = %v, want 0", got)
	}
	if got := s.Distance(a, b); got != 1 {
		t.Errorf("Distance(a,b) = %v, want 1 (one character apart must look maximal)", got)
	}
	if s.Threshold() != 0 {
		t.Errorf("Threshold = %v, want 0", s.Threshold())
	}
}

func TestSparseKeySeparation(t *testing.T) {
	s1, s2 := NewSparse(testKey(6)), NewSparse(testKey(7))
	if s1.Encode("word") == s2.Encode("word") {
		t.Error("tokens under different keys collide")
	}
}

func TestSparseInjectiveProperty(t *testing.T) {
	s := NewSparse(testKey(8))
	f := func(a, b string) bool {
		if a == b {
			return s.Distance(s.Encode(a), s.Encode(b)) == 0
		}
		return s.Distance(s.Encode(a), s.Encode(b)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenString(t *testing.T) {
	var tok Token
	tok[0] = 0xAB
	tok[31] = 0x01
	str := tok.String()
	if len(str) != 64 {
		t.Fatalf("token string length %d, want 64", len(str))
	}
	if str[:2] != "ab" || str[62:] != "01" {
		t.Errorf("token hex wrong: %s", str)
	}
}

func TestDenseEncodeDeterministicProperty(t *testing.T) {
	d := newTestDense(t, 0.5)
	f := func(raw [64]int8) bool {
		p := make([]float64, 64)
		for i, v := range raw {
			p[i] = float64(v) / 512 // stay in the unit-diameter domain
		}
		e1, err := d.Encode(p)
		if err != nil {
			return false
		}
		e2, err := d.Encode(p)
		if err != nil {
			return false
		}
		return e1.Equal(e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDenseDistanceSymmetricProperty(t *testing.T) {
	d := newTestDense(t, 0.5)
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		p1, p2 := randomPair(rng, 64, rng.Float64())
		e1, err := d.Encode(p1)
		if err != nil {
			return false
		}
		e2, err := d.Encode(p2)
		if err != nil {
			return false
		}
		d12, err1 := d.Distance(e1, e2)
		d21, err2 := d.Distance(e2, e1)
		self, err3 := d.Distance(e1, e1)
		return err1 == nil && err2 == nil && err3 == nil && d12 == d21 && self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
