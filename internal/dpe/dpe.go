// Package dpe implements Distance Preserving Encodings (DPE), the
// cryptographic core of MIE (paper §IV).
//
// A DPE scheme is a triple (KEYGEN, ENCODE, DISTANCE) such that the distance
// between two encodings equals the distance between the underlying
// plaintexts whenever that plaintext distance is below a threshold t chosen
// at key-generation time; for larger plaintext distances the encoded
// distance conveys nothing beyond "at least t". The threshold is the
// security dial: it upper-bounds what an honest-but-curious server can learn
// about relations between encoded feature vectors, while still allowing the
// server to run clustering and indexing on the encodings.
//
// Two implementations are provided, mirroring the paper:
//
//   - Dense (Algorithm 2): for dense high-dimensional media features
//     (images, audio, video). Universal scalar quantization
//     e(x) = Q(Δ⁻¹(A·x + w)) with Gaussian A and uniform dither w expanded
//     from a short key by a PRG. Euclidean distance between plaintexts is
//     preserved as normalized Hamming distance between bit-vector encodings
//     up to t, then saturates.
//
//   - Sparse (Algorithm 3): for sparse media (text keywords). A PRF with
//     threshold t = 0: encodings reveal equality and nothing else.
package dpe

import (
	"errors"
	"fmt"
	"math"

	"mie/internal/crypto"
	"mie/internal/vec"
)

// Common errors.
var (
	// ErrBadDimension is returned when a plaintext vector does not match the
	// scheme's configured input dimension.
	ErrBadDimension = errors.New("dpe: plaintext dimension mismatch")
	// ErrBadEncoding is returned when encodings of incompatible sizes are
	// compared.
	ErrBadEncoding = errors.New("dpe: encoding size mismatch")
)

// slopeConst is sqrt(2/pi): for Gaussian projections the expected bit-flip
// probability for plaintext distance d is ~ d*sqrt(2/pi)/Δ in the linear
// (sub-threshold) regime. Choosing Δ = slopeConst*(t/0.5) makes the raw
// normalized Hamming distance reach its ~0.5 saturation right around dp = t,
// so that after rescaling by 2t the encoded distance tracks dp below t and
// pins near t above it — exactly the contract of Definition 1.
var slopeConst = math.Sqrt(2 / math.Pi)

// Dense is the DPE implementation for dense media feature vectors.
// It is safe for concurrent use after construction.
type Dense struct {
	inDim  int
	outDim int
	t      float64
	delta  float64
	a      []float64 // outDim x inDim row-major projection matrix
	w      []float64 // outDim dither values in [0, delta)
}

// DenseParams configures Dense-DPE key generation.
type DenseParams struct {
	// InDim is the plaintext feature-vector dimensionality (N). SURF-like
	// descriptors use 64.
	InDim int
	// OutDim is the encoding length in bits (M). Larger M reduces the noise
	// of the preserved distance at the cost of encoding size. The paper's
	// prototype uses OutDim == InDim scaled to bits; we default to
	// 8*InDim bits when zero, which keeps the byte size of the encoding
	// equal to a float32 vector of the same dimension.
	OutDim int
	// Threshold is t in (0, 1]: plaintext Euclidean distances below it are
	// preserved, larger ones are hidden. The paper's prototype uses 0.5.
	Threshold float64
}

// NewDense runs Dense-DPE KEYGEN: it expands key into the projection matrix
// A and dither w with a PRG and fixes the distance threshold. Plaintext
// vectors given to Encode must have distances bounded by 1 (normalize
// features accordingly).
func NewDense(key crypto.Key, params DenseParams) (*Dense, error) {
	if params.InDim <= 0 {
		return nil, fmt.Errorf("dpe: InDim must be positive, got %d", params.InDim)
	}
	if params.OutDim == 0 {
		params.OutDim = 8 * params.InDim
	}
	if params.OutDim <= 0 {
		return nil, fmt.Errorf("dpe: OutDim must be positive, got %d", params.OutDim)
	}
	if params.Threshold <= 0 || params.Threshold > 1 {
		return nil, fmt.Errorf("dpe: Threshold must be in (0,1], got %v", params.Threshold)
	}
	d := &Dense{
		inDim:  params.InDim,
		outDim: params.OutDim,
		t:      params.Threshold,
		delta:  slopeConst * (params.Threshold / 0.5),
		a:      make([]float64, params.OutDim*params.InDim),
		w:      make([]float64, params.OutDim),
	}
	g := crypto.NewPRG(key, fmt.Sprintf("dense-dpe:%d:%d", params.InDim, params.OutDim))
	for i := range d.a {
		d.a[i] = g.NormFloat64()
	}
	for i := range d.w {
		d.w[i] = g.Float64() * d.delta
	}
	return d, nil
}

// InDim returns the configured plaintext dimensionality.
func (d *Dense) InDim() int { return d.inDim }

// OutDim returns the encoding length in bits.
func (d *Dense) OutDim() int { return d.outDim }

// Threshold returns t: the largest plaintext distance the encodings preserve.
func (d *Dense) Threshold() float64 { return d.t }

// Encode runs Dense-DPE ENCODE on plaintext feature vector p, producing a
// bit-vector encoding. Deterministic: equal plaintexts yield equal encodings
// under the same key, which is what leaks (only) the patterns specified by
// the ideal functionality F_DPE.
func (d *Dense) Encode(p []float64) (vec.BitVec, error) {
	if len(p) != d.inDim {
		return vec.BitVec{}, fmt.Errorf("%w: got %d, want %d", ErrBadDimension, len(p), d.inDim)
	}
	e := vec.NewBitVec(d.outDim)
	invDelta := 1 / d.delta
	for i := 0; i < d.outDim; i++ {
		row := d.a[i*d.inDim : (i+1)*d.inDim]
		var dot float64
		for j, x := range p {
			dot += row[j] * x
		}
		q := int64(math.Floor((dot + d.w[i]) * invDelta))
		// Q(.) quantizes [2v, 2v+1) -> 1 and [2v+1, 2v+2) -> 0: even floor -> 1.
		if q&1 == 0 {
			e.Set(i, true)
		}
	}
	return e, nil
}

// Distance runs Dense-DPE DISTANCE on two encodings. It returns a value that
// approximates the plaintext Euclidean distance when that distance is below
// the threshold, and a value pinned near the threshold otherwise.
func (d *Dense) Distance(e1, e2 vec.BitVec) (float64, error) {
	if e1.Len() != d.outDim || e2.Len() != d.outDim {
		return 0, fmt.Errorf("%w: got %d and %d, want %d", ErrBadEncoding, e1.Len(), e2.Len(), d.outDim)
	}
	return vec.NormHamming(e1, e2) * 2 * d.t, nil
}

// RawNormHamming exposes the unscaled normalized Hamming distance between
// encodings; this is the quantity server-side Hamming k-means clusters on.
func (d *Dense) RawNormHamming(e1, e2 vec.BitVec) (float64, error) {
	if e1.Len() != d.outDim || e2.Len() != d.outDim {
		return 0, fmt.Errorf("%w: got %d and %d, want %d", ErrBadEncoding, e1.Len(), e2.Len(), d.outDim)
	}
	return vec.NormHamming(e1, e2), nil
}

// Token is a Sparse-DPE encoding of a single keyword: a PRF output. Tokens
// from the same key are equal iff the keywords are equal; nothing else about
// the keywords is revealed.
type Token [32]byte

// String renders the token as lowercase hex, handy as a map key and for the
// wire protocol.
func (t Token) String() string {
	const hexdigits = "0123456789abcdef"
	buf := make([]byte, 64)
	for i, b := range t {
		buf[2*i] = hexdigits[b>>4]
		buf[2*i+1] = hexdigits[b&0xf]
	}
	return string(buf)
}

// Sparse is the DPE implementation for sparse media (text). Its threshold is
// zero: DISTANCE reveals only equality. It is safe for concurrent use.
type Sparse struct {
	key crypto.Key
}

// NewSparse runs Sparse-DPE KEYGEN.
func NewSparse(key crypto.Key) *Sparse {
	return &Sparse{key: crypto.DeriveKey(key, "sparse-dpe")}
}

// Threshold returns 0: only equality is preserved.
func (s *Sparse) Threshold() float64 { return 0 }

// Encode runs Sparse-DPE ENCODE on a keyword: f(x) = P_K(x).
func (s *Sparse) Encode(keyword string) Token {
	var t Token
	copy(t[:], crypto.PRFString(s.key, keyword))
	return t
}

// Distance runs Sparse-DPE DISTANCE: 0 if the tokens match, 1 otherwise.
// Per Algorithm 3, distances above the threshold take a constant value (1),
// so even keywords one character apart look maximally distant.
func (s *Sparse) Distance(t1, t2 Token) float64 {
	if t1 == t2 {
		return 0
	}
	return 1
}
