// Package audio is the third-modality substrate, demonstrating the paper's
// claim that MIE handles any dense media format ("an object containing
// text, image, audio, and/or video", §III) through the same machinery: a
// feature extractor producing high-dimensional float descriptors whose
// Euclidean distances capture similarity — everything downstream (Dense-DPE
// encoding, Hamming clustering, BOVW indexing) is media-agnostic.
//
// Clips are mono PCM float slices at a fixed nominal rate. The extractor is
// a compact spectral pipeline: overlapping Hann-windowed frames, per-frame
// log-energy in geometrically spaced frequency bands (Goertzel filters — a
// filterbank in the spirit of MFCCs without the DCT), unit-normalized and
// scaled into Dense-DPE's distance domain.
package audio

import (
	"fmt"
	"math"

	"mie/internal/vec"
)

const (
	// SampleRate is the nominal sampling rate clips are interpreted at.
	SampleRate = 16000
	// DescriptorDim is the number of filterbank bands per descriptor.
	DescriptorDim = 32
	// frameSize and hopSize define the analysis windows (16 ms frames,
	// 50% overlap at the nominal rate).
	frameSize = 256
	hopSize   = 128
	// DescriptorScale bounds pairwise descriptor distances the same way
	// imaging.DescriptorScale does, keeping them below the DPE threshold.
	DescriptorScale = 0.3
)

// Clip is a mono audio clip: PCM samples, nominally in [-1, 1].
type Clip struct {
	Samples []float64
}

// NewClip wraps samples in a Clip (the slice is used directly).
func NewClip(samples []float64) *Clip {
	return &Clip{Samples: samples}
}

// Duration returns the clip length in seconds at the nominal rate.
func (c *Clip) Duration() float64 {
	return float64(len(c.Samples)) / SampleRate
}

// bandFrequencies returns the geometrically spaced center frequencies of
// the filterbank, from 100 Hz up to just below Nyquist.
func bandFrequencies() []float64 {
	const lo, hi = 100.0, 7000.0
	out := make([]float64, DescriptorDim)
	ratio := math.Pow(hi/lo, 1/float64(DescriptorDim-1))
	f := lo
	for i := range out {
		out[i] = f
		f *= ratio
	}
	return out
}

// goertzelPower computes the spectral power of frame at frequency f using
// the Goertzel algorithm.
func goertzelPower(frame []float64, f float64) float64 {
	w := 2 * math.Pi * f / SampleRate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range frame {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}

// Extract computes one descriptor per analysis frame: the log-energy of
// each filterbank band, unit-normalized and scaled. Clips shorter than one
// frame yield no descriptors.
func Extract(c *Clip) [][]float64 {
	if c == nil || len(c.Samples) < frameSize {
		return nil
	}
	bands := bandFrequencies()
	// Hann window, precomputed.
	window := make([]float64, frameSize)
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(frameSize-1)))
	}
	frame := make([]float64, frameSize)
	var out [][]float64
	for off := 0; off+frameSize <= len(c.Samples); off += hopSize {
		for i := range frame {
			frame[i] = c.Samples[off+i] * window[i]
		}
		d := make([]float64, DescriptorDim)
		for b, f := range bands {
			d[b] = math.Log1p(goertzelPower(frame, f))
		}
		if vec.Norm(d) < 1e-12 {
			out = append(out, make([]float64, DescriptorDim)) // silence
			continue
		}
		vec.Normalize(d)
		vec.Scale(d, DescriptorScale)
		out = append(out, d)
	}
	return out
}

// Tone synthesizes a test clip: a sum of sine partials with optional noise,
// deterministic in its arguments. Useful for tests and synthetic datasets.
func Tone(durationSec float64, freqs []float64, amps []float64, noise float64, seed int64) (*Clip, error) {
	if len(freqs) != len(amps) {
		return nil, fmt.Errorf("audio: %d freqs vs %d amps", len(freqs), len(amps))
	}
	n := int(durationSec * SampleRate)
	if n <= 0 {
		return nil, fmt.Errorf("audio: non-positive duration %v", durationSec)
	}
	samples := make([]float64, n)
	// Small deterministic LCG for noise so the package stays stdlib-light.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*2 - 1
	}
	for i := range samples {
		t := float64(i) / SampleRate
		var v float64
		for j, f := range freqs {
			v += amps[j] * math.Sin(2*math.Pi*f*t)
		}
		v += noise * next()
		samples[i] = v
	}
	return NewClip(samples), nil
}
