package audio

import (
	"math"
	"testing"

	"mie/internal/vec"
)

func mustTone(t *testing.T, dur float64, freqs, amps []float64, noise float64, seed int64) *Clip {
	t.Helper()
	c, err := Tone(dur, freqs, amps, noise, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestToneValidation(t *testing.T) {
	if _, err := Tone(1, []float64{440}, nil, 0, 1); err == nil {
		t.Error("expected error for mismatched freqs/amps")
	}
	if _, err := Tone(0, nil, nil, 0, 1); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestClipDuration(t *testing.T) {
	c := mustTone(t, 0.5, []float64{440}, []float64{1}, 0, 1)
	if math.Abs(c.Duration()-0.5) > 1e-3 {
		t.Errorf("Duration = %v", c.Duration())
	}
}

func TestExtractShape(t *testing.T) {
	c := mustTone(t, 0.2, []float64{440}, []float64{1}, 0, 1)
	descs := Extract(c)
	if len(descs) == 0 {
		t.Fatal("no descriptors")
	}
	wantFrames := (len(c.Samples)-frameSize)/hopSize + 1
	if len(descs) != wantFrames {
		t.Errorf("got %d descriptors, want %d", len(descs), wantFrames)
	}
	for _, d := range descs {
		if len(d) != DescriptorDim {
			t.Fatalf("descriptor dim %d", len(d))
		}
		if n := vec.Norm(d); math.Abs(n-DescriptorScale) > 1e-9 {
			t.Fatalf("descriptor norm %v, want %v", n, DescriptorScale)
		}
	}
}

func TestExtractShortOrNilClip(t *testing.T) {
	if got := Extract(nil); got != nil {
		t.Error("nil clip should yield nil")
	}
	if got := Extract(NewClip(make([]float64, 10))); got != nil {
		t.Error("sub-frame clip should yield nil")
	}
}

func TestExtractSilence(t *testing.T) {
	descs := Extract(NewClip(make([]float64, frameSize*2)))
	for _, d := range descs {
		if vec.Norm(d) != 0 {
			t.Fatalf("silence descriptor norm %v, want 0", vec.Norm(d))
		}
	}
}

func TestSpectralSelectivity(t *testing.T) {
	// A 440 Hz tone and a 3500 Hz tone must produce clearly different
	// descriptors, and each should have its energy concentrated in
	// different bands.
	low := Extract(mustTone(t, 0.1, []float64{440}, []float64{1}, 0, 1))
	high := Extract(mustTone(t, 0.1, []float64{3500}, []float64{1}, 0, 2))
	bands := bandFrequencies()
	argmax := func(d []float64) int {
		best := 0
		for i, v := range d {
			if v > d[best] {
				best = i
			}
		}
		_ = bands
		return best
	}
	if argmax(low[0]) >= argmax(high[0]) {
		t.Errorf("440Hz peak band %d should be below 3500Hz peak band %d",
			argmax(low[0]), argmax(high[0]))
	}
	if d := vec.Euclidean(low[0], high[0]); d < 0.1 {
		t.Errorf("distinct tones produced near-identical descriptors (d=%v)", d)
	}
}

func TestSimilarClipsCloserThanDissimilar(t *testing.T) {
	base := Extract(mustTone(t, 0.1, []float64{440, 880}, []float64{1, 0.5}, 0.05, 1))
	near := Extract(mustTone(t, 0.1, []float64{440, 880}, []float64{1, 0.5}, 0.05, 2)) // same timbre, new noise
	far := Extract(mustTone(t, 0.1, []float64{2000, 5000}, []float64{1, 0.7}, 0.05, 3))
	var dNear, dFar float64
	for i := range base {
		dNear += vec.Euclidean(base[i], near[i])
		dFar += vec.Euclidean(base[i], far[i])
	}
	if dNear >= dFar {
		t.Errorf("same-timbre clips (%v) should be closer than different (%v)", dNear, dFar)
	}
}

func TestToneDeterministic(t *testing.T) {
	a := mustTone(t, 0.05, []float64{440}, []float64{1}, 0.1, 7)
	b := mustTone(t, 0.05, []float64{440}, []float64{1}, 0.1, 7)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("Tone not deterministic")
		}
	}
}

func TestDescriptorDistancesBounded(t *testing.T) {
	a := Extract(mustTone(t, 0.05, []float64{300}, []float64{1}, 0.2, 1))
	b := Extract(mustTone(t, 0.05, []float64{6000}, []float64{1}, 0.2, 2))
	for i := range a {
		if d := vec.Euclidean(a[i], b[i]); d > 2*DescriptorScale+1e-9 {
			t.Fatalf("distance %v exceeds bound", d)
		}
	}
}
