// Package crypto provides the symmetric primitives MIE is built on:
//
//   - PRF: a pseudo-random function (HMAC-SHA256), the basis of Sparse-DPE
//     and of the PRF'd index positions in the MSSE baselines.
//   - PRG: a deterministic pseudo-random generator (AES-CTR keystream), used
//     to expand a short Dense-DPE key into the projection matrix A and
//     dither w, and for all reproducible randomness in the framework.
//   - Cipher: IND-CPA symmetric encryption of data objects (AES-CTR with a
//     fresh random IV per message), exactly the "semantically secure
//     block-cipher such as AES in CTR mode" the paper prescribes for data
//     keys.
//
// All keys are fixed-size byte arrays; helpers derive sub-keys by PRF so a
// single repository key can be fanned out into per-purpose keys without
// additional key distribution.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// KeySize is the size in bytes of all symmetric keys in the framework.
const KeySize = 32

// Key is a 256-bit symmetric key.
type Key [KeySize]byte

// NewRandomKey returns a fresh key from the OS entropy source.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("crypto: read random key: %w", err)
	}
	return k, nil
}

// KeyFromBytes builds a key from exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, fmt.Errorf("crypto: key must be %d bytes, got %d", KeySize, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// DeriveKey deterministically derives a sub-key for the given purpose label,
// e.g. DeriveKey(rk, "dense-dpe").
func DeriveKey(k Key, purpose string) Key {
	var out Key
	copy(out[:], PRF(k, []byte(purpose)))
	return out
}

// PRF evaluates the pseudo-random function on msg under key k. The output is
// 32 bytes (HMAC-SHA256).
func PRF(k Key, msg []byte) []byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write(msg)
	return mac.Sum(nil)
}

// PRFString is PRF over a string message.
func PRFString(k Key, msg string) []byte {
	return PRF(k, []byte(msg))
}

// PRFUint64 evaluates the PRF on a 64-bit counter, the token shape used by
// the MSSE index positions l = PRF(k1, ctr).
func PRFUint64(k Key, ctr uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ctr)
	return PRF(k, buf[:])
}

// PRG is a deterministic pseudo-random generator: the AES-256-CTR keystream
// of a zero plaintext under the seed key. For a PPT-bounded adversary its
// output is indistinguishable from true randomness, which is the property
// Dense-DPE's security proof relies on when expanding the seed into {A, w}.
//
// PRG is not safe for concurrent use; each consumer should create its own.
type PRG struct {
	stream cipher.Stream
	// buffered gaussian from Box-Muller
	hasSpare bool
	spare    float64
}

// NewPRG creates a generator seeded with the given key and a per-use label,
// so several independent streams can be derived from one key.
func NewPRG(seed Key, label string) *PRG {
	k := DeriveKey(seed, "prg:"+label)
	block, err := aes.NewCipher(k[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which KeySize rules out.
		panic(fmt.Sprintf("crypto: aes.NewCipher: %v", err))
	}
	iv := make([]byte, block.BlockSize())
	return &PRG{stream: cipher.NewCTR(block, iv)}
}

// Read fills p with pseudo-random bytes. It never fails.
func (g *PRG) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	g.stream.XORKeyStream(p, p)
	return len(p), nil
}

// Uint64 returns a pseudo-random 64-bit value.
func (g *PRG) Uint64() uint64 {
	var buf [8]byte
	if _, err := g.Read(buf[:]); err != nil {
		panic(err) // unreachable: Read never fails
	}
	return binary.BigEndian.Uint64(buf[:])
}

// Float64 returns a pseudo-random value uniform in [0,1).
func (g *PRG) Float64() float64 {
	return float64(g.Uint64()>>11) / float64(1<<53)
}

// Intn returns a pseudo-random value uniform in [0,n). Panics if n <= 0.
func (g *PRG) Intn(n int) int {
	if n <= 0 {
		panic("crypto: PRG.Intn n must be positive")
	}
	return int(g.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample via Box-Muller, driven by the
// PRG stream. Used to populate the Dense-DPE projection matrix A.
func (g *PRG) NormFloat64() float64 {
	if g.hasSpare {
		g.hasSpare = false
		return g.spare
	}
	var u1, u2 float64
	for {
		u1 = g.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 = g.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	g.spare = r * math.Sin(theta)
	g.hasSpare = true
	return r * math.Cos(theta)
}

// Cipher provides IND-CPA encryption (AES-256-CTR, fresh random IV per
// message). The ciphertext layout is IV || body.
type Cipher struct {
	block cipher.Block
	// randSource lets tests inject determinism; defaults to crypto/rand.
	randSource io.Reader
}

// NewCipher builds a Cipher for the given key.
func NewCipher(k Key) *Cipher {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("crypto: aes.NewCipher: %v", err))
	}
	return &Cipher{block: block, randSource: rand.Reader}
}

// ErrCiphertextTooShort is returned by Decrypt for ciphertexts shorter than
// one IV.
var ErrCiphertextTooShort = errors.New("crypto: ciphertext too short")

// Encrypt returns IV||CTR(plaintext) under a fresh random IV.
func (c *Cipher) Encrypt(plaintext []byte) ([]byte, error) {
	bs := c.block.BlockSize()
	out := make([]byte, bs+len(plaintext))
	if _, err := io.ReadFull(c.randSource, out[:bs]); err != nil {
		return nil, fmt.Errorf("crypto: read IV: %w", err)
	}
	cipher.NewCTR(c.block, out[:bs]).XORKeyStream(out[bs:], plaintext)
	return out, nil
}

// Decrypt reverses Encrypt.
func (c *Cipher) Decrypt(ciphertext []byte) ([]byte, error) {
	bs := c.block.BlockSize()
	if len(ciphertext) < bs {
		return nil, ErrCiphertextTooShort
	}
	out := make([]byte, len(ciphertext)-bs)
	cipher.NewCTR(c.block, ciphertext[:bs]).XORKeyStream(out, ciphertext[bs:])
	return out, nil
}

// EncryptUint64 encrypts an 8-byte big-endian integer; the shape used for
// IND-CPA-protected keyword frequencies in the MSSE baseline.
func (c *Cipher) EncryptUint64(v uint64) ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return c.Encrypt(buf[:])
}

// DecryptUint64 reverses EncryptUint64.
func (c *Cipher) DecryptUint64(ciphertext []byte) (uint64, error) {
	pt, err := c.Decrypt(ciphertext)
	if err != nil {
		return 0, err
	}
	if len(pt) != 8 {
		return 0, fmt.Errorf("crypto: uint64 plaintext has %d bytes", len(pt))
	}
	return binary.BigEndian.Uint64(pt), nil
}
