package crypto

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 31)); err == nil {
		t.Error("expected error for short key")
	}
	raw := make([]byte, KeySize)
	raw[0] = 42
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if k[0] != 42 {
		t.Error("key bytes not copied")
	}
}

func TestNewRandomKeyDistinct(t *testing.T) {
	a, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two random keys are equal")
	}
}

func TestPRFDeterministic(t *testing.T) {
	k := testKey(1)
	a := PRF(k, []byte("hello"))
	b := PRF(k, []byte("hello"))
	if !bytes.Equal(a, b) {
		t.Error("PRF not deterministic")
	}
	if len(a) != 32 {
		t.Errorf("PRF output %d bytes, want 32", len(a))
	}
}

func TestPRFSeparation(t *testing.T) {
	k1, k2 := testKey(1), testKey(2)
	if bytes.Equal(PRF(k1, []byte("x")), PRF(k2, []byte("x"))) {
		t.Error("different keys produced same PRF output")
	}
	if bytes.Equal(PRF(k1, []byte("x")), PRF(k1, []byte("y"))) {
		t.Error("different messages produced same PRF output")
	}
}

func TestPRFNoCollisionsProperty(t *testing.T) {
	k := testKey(3)
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(PRF(k, a), PRF(k, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRFUint64(t *testing.T) {
	k := testKey(4)
	if bytes.Equal(PRFUint64(k, 0), PRFUint64(k, 1)) {
		t.Error("counters 0 and 1 collide")
	}
	if !bytes.Equal(PRFUint64(k, 7), PRFUint64(k, 7)) {
		t.Error("PRFUint64 not deterministic")
	}
}

func TestDeriveKey(t *testing.T) {
	k := testKey(5)
	a := DeriveKey(k, "dense")
	b := DeriveKey(k, "sparse")
	if a == b {
		t.Error("different purposes derived the same key")
	}
	if a != DeriveKey(k, "dense") {
		t.Error("DeriveKey not deterministic")
	}
}

func TestPRGDeterministic(t *testing.T) {
	g1 := NewPRG(testKey(6), "test")
	g2 := NewPRG(testKey(6), "test")
	for i := 0; i < 100; i++ {
		if g1.Uint64() != g2.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestPRGLabelSeparation(t *testing.T) {
	g1 := NewPRG(testKey(6), "a")
	g2 := NewPRG(testKey(6), "b")
	same := 0
	for i := 0; i < 32; i++ {
		if g1.Uint64() == g2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/32 identical outputs across labels", same)
	}
}

func TestPRGFloat64Range(t *testing.T) {
	g := NewPRG(testKey(7), "float")
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPRGFloat64Uniformity(t *testing.T) {
	g := NewPRG(testKey(8), "uniform")
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestPRGNormFloat64Moments(t *testing.T) {
	g := NewPRG(testKey(9), "gauss")
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

func TestPRGIntn(t *testing.T) {
	g := NewPRG(testKey(10), "intn")
	for i := 0; i < 1000; i++ {
		v := g.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	g.Intn(0)
}

func TestCipherRoundTrip(t *testing.T) {
	c := NewCipher(testKey(11))
	tests := [][]byte{nil, {}, []byte("a"), []byte("hello world"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, pt := range tests {
		ct, err := c.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip failed for %d bytes", len(pt))
		}
	}
}

func TestCipherRoundTripProperty(t *testing.T) {
	c := NewCipher(testKey(12))
	f := func(pt []byte) bool {
		ct, err := c.Encrypt(pt)
		if err != nil {
			return false
		}
		got, err := c.Decrypt(ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCipherProbabilistic(t *testing.T) {
	c := NewCipher(testKey(13))
	pt := []byte("same plaintext")
	a, err := c.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("IND-CPA cipher produced identical ciphertexts for same plaintext")
	}
}

func TestCipherWrongKey(t *testing.T) {
	c1 := NewCipher(testKey(14))
	c2 := NewCipher(testKey(15))
	ct, err := c1.Encrypt([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("secret")) {
		t.Error("wrong key decrypted to plaintext")
	}
}

func TestCipherTooShort(t *testing.T) {
	c := NewCipher(testKey(16))
	if _, err := c.Decrypt([]byte{1, 2, 3}); err != ErrCiphertextTooShort {
		t.Errorf("err = %v, want ErrCiphertextTooShort", err)
	}
}

func TestCipherUint64(t *testing.T) {
	c := NewCipher(testKey(17))
	for _, v := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		ct, err := c.EncryptUint64(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecryptUint64(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("uint64 round trip: got %d, want %d", got, v)
		}
	}
	if _, err := c.DecryptUint64([]byte{}); err == nil {
		t.Error("expected error for empty ciphertext")
	}
}
