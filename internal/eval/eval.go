// Package eval implements the retrieval-quality metrics of the paper's
// precision experiment (Table III): average precision per query and mean
// average precision (mAP) over a query set, computed exactly as the INRIA
// Holidays evaluation package does — the query itself is excluded by
// construction and every relevant item missing from the ranking contributes
// zero precision.
package eval

import "fmt"

// AveragePrecision computes AP of one ranked result list against the set of
// relevant ids: the mean of precision@rank over the ranks where a relevant
// item appears, divided by the total number of relevant items.
func AveragePrecision(ranked []string, relevant []string) float64 {
	if len(relevant) == 0 {
		return 0
	}
	rel := make(map[string]struct{}, len(relevant))
	for _, r := range relevant {
		rel[r] = struct{}{}
	}
	var hits int
	var sum float64
	for i, id := range ranked {
		if _, ok := rel[id]; !ok {
			continue
		}
		delete(rel, id) // count duplicates in the ranking only once
		hits++
		sum += float64(hits) / float64(i+1)
	}
	return sum / float64(len(relevant))
}

// PrecisionAtK is the fraction of the top k results that are relevant.
func PrecisionAtK(ranked []string, relevant []string, k int) float64 {
	if k <= 0 {
		return 0
	}
	rel := make(map[string]struct{}, len(relevant))
	for _, r := range relevant {
		rel[r] = struct{}{}
	}
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	var hits int
	for _, id := range ranked {
		if _, ok := rel[id]; ok {
			hits++
			delete(rel, id)
		}
	}
	return float64(hits) / float64(k)
}

// MeanAveragePrecision averages AP over queries. Rankings and truths must
// be parallel slices.
func MeanAveragePrecision(rankings [][]string, truths [][]string) (float64, error) {
	if len(rankings) != len(truths) {
		return 0, fmt.Errorf("eval: %d rankings vs %d truths", len(rankings), len(truths))
	}
	if len(rankings) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range rankings {
		sum += AveragePrecision(rankings[i], truths[i])
	}
	return sum / float64(len(rankings)), nil
}
