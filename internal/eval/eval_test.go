package eval

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAveragePrecision(t *testing.T) {
	tests := []struct {
		name     string
		ranked   []string
		relevant []string
		want     float64
	}{
		{name: "perfect", ranked: []string{"a", "b"}, relevant: []string{"a", "b"}, want: 1},
		{name: "empty relevant", ranked: []string{"a"}, relevant: nil, want: 0},
		{name: "nothing found", ranked: []string{"x", "y"}, relevant: []string{"a"}, want: 0},
		{name: "half", ranked: []string{"a", "x"}, relevant: []string{"a", "b"}, want: 0.5},
		{name: "second position", ranked: []string{"x", "a"}, relevant: []string{"a"}, want: 0.5},
		{name: "textbook", ranked: []string{"a", "x", "b"}, relevant: []string{"a", "b"}, want: (1.0 + 2.0/3.0) / 2},
		{name: "duplicate counted once", ranked: []string{"a", "a"}, relevant: []string{"a", "b"}, want: 0.5},
		{name: "missing relevant penalized", ranked: []string{"a"}, relevant: []string{"a", "b", "c"}, want: 1.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AveragePrecision(tt.ranked, tt.relevant); !almost(got, tt.want) {
				t.Errorf("AP = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPrecisionAtK(t *testing.T) {
	ranked := []string{"a", "x", "b", "y"}
	relevant := []string{"a", "b"}
	if got := PrecisionAtK(ranked, relevant, 2); !almost(got, 0.5) {
		t.Errorf("P@2 = %v, want 0.5", got)
	}
	if got := PrecisionAtK(ranked, relevant, 4); !almost(got, 0.5) {
		t.Errorf("P@4 = %v, want 0.5", got)
	}
	if got := PrecisionAtK(ranked, relevant, 0); got != 0 {
		t.Errorf("P@0 = %v, want 0", got)
	}
	if got := PrecisionAtK([]string{"a"}, relevant, 5); !almost(got, 0.2) {
		t.Errorf("short ranking P@5 = %v, want 0.2", got)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	m, err := MeanAveragePrecision(
		[][]string{{"a"}, {"x", "b"}},
		[][]string{{"a"}, {"b"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m, 0.75) {
		t.Errorf("mAP = %v, want 0.75", m)
	}
	if _, err := MeanAveragePrecision([][]string{{"a"}}, nil); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	m, err = MeanAveragePrecision(nil, nil)
	if err != nil || m != 0 {
		t.Errorf("empty mAP = (%v,%v)", m, err)
	}
}
