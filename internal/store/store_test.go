package store

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New[int](4)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	if prev, replaced := s.Put("a", 1); replaced {
		t.Fatalf("first Put reported replaced with prev=%d", prev)
	}
	if prev, replaced := s.Put("a", 2); !replaced || prev != 1 {
		t.Fatalf("Put replace = (%d,%v), want (1,true)", prev, replaced)
	}
	if v, ok := s.Get("a"); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v), want (2,true)", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if v, ok := s.Delete("a"); !ok || v != 2 {
		t.Fatalf("Delete = (%d,%v), want (2,true)", v, ok)
	}
	if _, ok := s.Delete("a"); ok {
		t.Fatal("double Delete reported success")
	}
	if s.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", s.Len())
	}
}

func TestDefaultShards(t *testing.T) {
	s := New[string](0)
	if got := len(s.shards); got != DefaultShards {
		t.Fatalf("shard count = %d, want %d", got, DefaultShards)
	}
}

func TestRangeAndItems(t *testing.T) {
	s := New[int](8)
	want := map[string]int{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		s.Put(k, i)
		want[k] = i
	}
	got := map[string]int{}
	s.Range(func(k string, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %s=%d, want %d", k, got[k], v)
		}
	}
	items := s.Items()
	if len(items) != len(want) {
		t.Fatalf("Items has %d entries, want %d", len(items), len(want))
	}
	// Early-exit Range stops promptly.
	n := 0
	s.Range(func(string, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-exit Range visited %d entries, want 1", n)
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	s := New[int](16)
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("obj-%d", i), i)
	}
	occupied := 0
	for i := range s.shards {
		if len(s.shards[i].m) > 0 {
			occupied++
		}
	}
	if occupied < len(s.shards)/2 {
		t.Fatalf("only %d of %d shards occupied: FNV pick not spreading", occupied, len(s.shards))
	}
}

// TestConcurrentMixedOps is the -race workout: writers, readers and
// iterators on overlapping keys.
func TestConcurrentMixedOps(t *testing.T) {
	s := New[int](8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k-%d", (w*200+i)%100)
				switch i % 4 {
				case 0, 1:
					s.Put(k, i)
				case 2:
					s.Get(k)
				case 3:
					s.Delete(k)
				}
				if i%50 == 0 {
					s.Range(func(string, int) bool { return true })
					s.Items()
					s.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	// Sanity: the surviving keys are a subset of those ever written.
	var keys []string
	s.Range(func(k string, _ int) bool { keys = append(keys, k); return true })
	sort.Strings(keys)
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("Range reported %s but Get misses it", k)
		}
	}
}
