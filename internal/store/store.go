// Package store provides the repository engine's storage substrate: a
// string-keyed, N-way sharded concurrent map. Splitting the flat object map
// into independently locked shards removes the single point of contention
// the old repository-wide RWMutex created under the paper's Figure 4
// multi-writer workload — writers touching different objects proceed in
// parallel, and readers never contend with writers on other shards.
//
// The package is deliberately generic and knows nothing about MIE: it is the
// storage layer under internal/core's modality engines, mirroring how the
// authors' precursor CBIR system separates the storage substrate from the
// per-modality retrieval logic.
package store

import (
	"hash/fnv"
	"sync"
)

// Store is the small interface the repository engine programs against. Keys
// are object identifiers (the deterministic ID(d) the scheme leaks); values
// are whatever record the engine keeps per object.
type Store[V any] interface {
	// Get returns the value stored under key.
	Get(key string) (V, bool)
	// Put stores v under key and returns the previous value, if any.
	Put(key string, v V) (prev V, replaced bool)
	// Delete removes key and returns the value it held, if any.
	Delete(key string) (V, bool)
	// Len returns the number of stored entries.
	Len() int
	// Range calls fn for every entry until fn returns false. Iteration is
	// per-shard: entries added or removed concurrently may or may not be
	// observed, but each surviving entry is visited at most once.
	Range(fn func(key string, v V) bool)
	// Items returns a copied view of the store. The copy is taken shard by
	// shard, so it is NOT a point-in-time cut under concurrent writes —
	// callers needing consistency must replay a changelog over it (which is
	// exactly what the repository's off-lock Train does).
	Items() map[string]V
}

// DefaultShards is the shard count used when none is given: enough ways to
// make same-shard writer collisions rare at realistic core counts, small
// enough that per-shard overhead is negligible.
const DefaultShards = 32

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// Sharded is the standard Store implementation: FNV-1a of the key picks the
// shard, each shard holds its own map under its own RWMutex.
type Sharded[V any] struct {
	shards []shard[V]
}

var _ Store[int] = (*Sharded[int])(nil)

// New creates a sharded store with n shards; n <= 0 takes DefaultShards.
func New[V any](n int) *Sharded[V] {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Sharded[V]{shards: make([]shard[V], n)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]V)
	}
	return s
}

// pick hashes key to its shard with FNV-1a.
func (s *Sharded[V]) pick(key string) *shard[V] {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // fnv.Write never fails
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Get returns the value stored under key.
func (s *Sharded[V]) Get(key string) (V, bool) {
	sh := s.pick(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[key]
	return v, ok
}

// Put stores v under key and returns the previous value, if any.
func (s *Sharded[V]) Put(key string, v V) (prev V, replaced bool) {
	sh := s.pick(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	prev, replaced = sh.m[key]
	sh.m[key] = v
	return prev, replaced
}

// Delete removes key and returns the value it held, if any.
func (s *Sharded[V]) Delete(key string) (V, bool) {
	sh := s.pick(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	return v, ok
}

// Len returns the number of stored entries.
func (s *Sharded[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false.
func (s *Sharded[V]) Range(fn func(key string, v V) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Items returns a shard-by-shard copy of the store's contents.
func (s *Sharded[V]) Items() map[string]V {
	out := make(map[string]V, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			out[k] = v
		}
		sh.mu.RUnlock()
	}
	return out
}
