package index

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func randTermsFor(rng *rand.Rand, vocabSize, maxTerms int) map[Term]uint64 {
	n := 1 + rng.Intn(maxTerms)
	terms := make(map[Term]uint64, n)
	for i := 0; i < n; i++ {
		terms[Term(fmt.Sprintf("t%d", rng.Intn(vocabSize)))] = uint64(1 + rng.Intn(5))
	}
	return terms
}

// assertResultsEquivalent compares two rankings allowing float-summation
// order differences: per-doc scores must agree within tol, and relative order
// must agree wherever the score gap exceeds tol.
func assertResultsEquivalent(t *testing.T, got, want []Result, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result length %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	wantScores := make(map[DocID]float64, len(want))
	for _, r := range want {
		wantScores[r.Doc] = r.Score
	}
	for _, r := range got {
		w, ok := wantScores[r.Doc]
		if !ok {
			t.Fatalf("doc %s in got but not in want\ngot:  %v\nwant: %v", r.Doc, got, want)
		}
		if math.Abs(r.Score-w) > tol {
			t.Fatalf("doc %s score %v, want %v", r.Doc, r.Score, w)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score+tol {
			t.Fatalf("got not sorted at %d: %v", i, got)
		}
	}
}

// The core contract: a Segmented index over any history of adds, re-adds and
// removes — across seals and compactions — ranks exactly like one monolithic
// Inverted holding the final live documents.
func TestSegmentedMatchesMonolithicOracle(t *testing.T) {
	for _, ranking := range []Ranking{RankTFIDF, RankBM25} {
		t.Run(fmt.Sprintf("ranking=%d", ranking), func(t *testing.T) {
			rng := rand.New(rand.NewSource(91))
			seg, err := NewSegmented(SegmentedOptions{
				Index:       Options{Ranking: ranking},
				MemtableCap: 7, // tiny: force many seals
			})
			if err != nil {
				t.Fatal(err)
			}
			defer seg.Close()
			oracle, err := New(Options{Ranking: ranking})
			if err != nil {
				t.Fatal(err)
			}
			live := make(map[DocID]map[Term]uint64)
			check := func() {
				t.Helper()
				for q := 0; q < 10; q++ {
					query := randTermsFor(rng, 40, 4)
					got := seg.Lookup(query, 10)
					want := oracle.Search(query, 10)
					assertResultsEquivalent(t, got, want, 1e-9)
				}
				if seg.DocCount() != oracle.DocCount() {
					t.Fatalf("DocCount %d, want %d", seg.DocCount(), oracle.DocCount())
				}
			}
			for step := 0; step < 400; step++ {
				op := rng.Intn(10)
				switch {
				case op < 6 || len(live) == 0: // add or re-add
					doc := DocID(fmt.Sprintf("d%d", rng.Intn(60)))
					terms := randTermsFor(rng, 40, 6)
					if err := seg.Add(doc, terms); err != nil {
						t.Fatal(err)
					}
					if err := oracle.Add(doc, terms); err != nil {
						t.Fatal(err)
					}
					live[doc] = terms
				case op < 8: // remove (sometimes an unknown doc)
					doc := DocID(fmt.Sprintf("d%d", rng.Intn(80)))
					seg.Remove(doc)
					oracle.Remove(doc)
					delete(live, doc)
				case op == 8:
					if err := seg.Seal(); err != nil {
						t.Fatal(err)
					}
				default:
					if err := seg.Compact(); err != nil {
						t.Fatal(err)
					}
				}
				if step%40 == 0 {
					check()
				}
			}
			check()
			if err := seg.Compact(); err != nil {
				t.Fatal(err)
			}
			st := seg.Stats()
			if st.SealedSegments > 1 {
				t.Fatalf("after full compaction: %d sealed segments", st.SealedSegments)
			}
			if st.DeadDocs != 0 && st.MemtableDocs == 0 {
				// Garbage can only live in the memtable right after a full
				// compaction (re-adds of sealed docs); with an empty memtable
				// none may remain.
				t.Fatalf("after full compaction: %d dead docs", st.DeadDocs)
			}
			check()
			if st.LiveDocs != len(live) {
				t.Fatalf("LiveDocs %d, want %d", st.LiveDocs, len(live))
			}
		})
	}
}

func TestSegmentedAutoSealAndStats(t *testing.T) {
	seg, err := NewSegmented(SegmentedOptions{MemtableCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	seals := 0
	seg.opts.OnSeal = func() { seals++ }
	for i := 0; i < 7; i++ {
		if err := seg.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"a": 1}); err != nil {
			t.Fatal(err)
		}
	}
	st := seg.Stats()
	if st.SealedSegments != 2 {
		t.Errorf("SealedSegments = %d, want 2 (7 docs / cap 3)", st.SealedSegments)
	}
	if st.MemtableDocs != 1 {
		t.Errorf("MemtableDocs = %d, want 1", st.MemtableDocs)
	}
	if st.LiveDocs != 7 {
		t.Errorf("LiveDocs = %d, want 7", st.LiveDocs)
	}
	if seals != 2 {
		t.Errorf("OnSeal fired %d times, want 2", seals)
	}
	// Tombstoning a sealed doc raises DeadDocs; removing a memtable doc does not.
	seg.Remove("d0")
	seg.Remove("d6")
	st = seg.Stats()
	if st.DeadDocs != 1 {
		t.Errorf("DeadDocs = %d, want 1", st.DeadDocs)
	}
	if st.LiveDocs != 5 {
		t.Errorf("LiveDocs = %d, want 5", st.LiveDocs)
	}
}

func TestSegmentedNeedsCompaction(t *testing.T) {
	seg, err := NewSegmented(SegmentedOptions{MemtableCap: 2, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.NeedsCompaction() {
		t.Error("empty index must not need compaction")
	}
	for i := 0; i < 6; i++ {
		if err := seg.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"a": 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !seg.NeedsCompaction() {
		t.Errorf("3 sealed segments at threshold 3 must need compaction (stats %+v)", seg.Stats())
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	if seg.NeedsCompaction() {
		t.Errorf("freshly compacted index must not need compaction (stats %+v)", seg.Stats())
	}
	if got := seg.Stats().Compactions; got != 1 {
		t.Errorf("Compactions = %d, want 1", got)
	}
}

func TestSegmentedChampionSpillPerSegment(t *testing.T) {
	dir := t.TempDir()
	seg, err := NewSegmented(SegmentedOptions{
		Index:       Options{ChampionSize: 2, SpillDir: dir},
		MemtableCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	// 12 docs sharing one term with distinct frequencies: every segment keeps
	// only its top-2 champions in memory, the rest spill to per-segment dirs.
	for i := 0; i < 12; i++ {
		doc := DocID(fmt.Sprintf("d%02d", i))
		if err := seg.Add(doc, map[Term]uint64{"shared": uint64(i + 1), Term(fmt.Sprintf("only-%02d", i)): 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Filler docs without the shared term keep its idf positive.
	for i := 0; i < 4; i++ {
		if err := seg.Add(DocID(fmt.Sprintf("f%d", i)), map[Term]uint64{"filler": 1}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected per-segment spill dirs, got %v", entries)
	}
	// The globally best docs by frequency live in the newest segments and
	// must surface at the top.
	res := seg.Lookup(map[Term]uint64{"shared": 1}, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].Doc != "d11" || res[1].Doc != "d10" {
		t.Errorf("top hits %v, want d11, d10 first", res)
	}
	// Unique terms always resolve regardless of which segment holds them.
	for i := 0; i < 12; i++ {
		q := map[Term]uint64{Term(fmt.Sprintf("only-%02d", i)): 1}
		r := seg.Lookup(q, 1)
		if len(r) != 1 || r[0].Doc != DocID(fmt.Sprintf("d%02d", i)) {
			t.Fatalf("unique-term lookup %d got %v", i, r)
		}
	}
	seg.Remove("d11")
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	res = seg.Lookup(map[Term]uint64{"shared": 1}, 3)
	for _, r := range res {
		if r.Doc == "d11" {
			t.Error("removed doc survived compaction")
		}
	}
	// Retired segment spill dirs are reclaimed; remaining dirs belong to the
	// merged segment + memtable at most.
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Errorf("stale spill dirs after compaction: %v", entries)
	}
	for _, e := range entries {
		if _, err := os.Stat(filepath.Join(dir, e.Name(), "postings.spill")); err != nil {
			t.Errorf("missing spill log in %s: %v", e.Name(), err)
		}
	}
}

func TestSegmentedBatchesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	seg, err := NewSegmented(SegmentedOptions{MemtableCap: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	for i := 0; i < 33; i++ {
		if err := seg.Add(DocID(fmt.Sprintf("d%d", i)), randTermsFor(rng, 30, 5)); err != nil {
			t.Fatal(err)
		}
	}
	seg.Remove("d3")
	if err := seg.Add("d4", randTermsFor(rng, 30, 5)); err != nil { // supersede a sealed version
		t.Fatal(err)
	}
	groups, err := seg.SegmentBatches()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewSegmented(SegmentedOptions{MemtableCap: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadSegments(groups); err != nil {
		t.Fatal(err)
	}
	if restored.DocCount() != seg.DocCount() {
		t.Fatalf("restored DocCount %d, want %d", restored.DocCount(), seg.DocCount())
	}
	if got, want := restored.Stats().SealedSegments, seg.Stats().SealedSegments; got != want {
		t.Fatalf("restored SealedSegments %d, want %d", got, want)
	}
	for q := 0; q < 20; q++ {
		query := randTermsFor(rng, 30, 4)
		assertResultsEquivalent(t, restored.Lookup(query, 10), seg.Lookup(query, 10), 1e-9)
	}
	if err := restored.LoadSegments(groups); err == nil {
		t.Error("LoadSegments on a non-empty index must fail")
	}
}

func TestSegmentedAddBatchBuildsOneSegment(t *testing.T) {
	seg, err := NewSegmented(SegmentedOptions{MemtableCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	batch := make([]BatchDoc, 20)
	for i := range batch {
		batch[i] = BatchDoc{Doc: DocID(fmt.Sprintf("d%d", i)), Terms: map[Term]uint64{"a": 1}}
	}
	if err := seg.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	st := seg.Stats()
	if st.SealedSegments != 1 {
		t.Errorf("bulk batch must build exactly one sealed segment, got %d", st.SealedSegments)
	}
	if st.MemtableDocs != 0 {
		t.Errorf("memtable should be empty after bulk seal, got %d docs", st.MemtableDocs)
	}
	if st.LiveDocs != 20 {
		t.Errorf("LiveDocs = %d, want 20", st.LiveDocs)
	}
}

func TestSegmentedClose(t *testing.T) {
	seg, err := NewSegmented(SegmentedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Add("d1", map[Term]uint64{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := seg.Add("d2", map[Term]uint64{"a": 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Add after Close: err = %v, want ErrClosed", err)
	}
	if err := seg.Seal(); !errors.Is(err, ErrClosed) {
		t.Errorf("Seal after Close: err = %v, want ErrClosed", err)
	}
	if err := seg.Compact(); err != nil {
		t.Errorf("Compact after Close must be a clean no-op, got %v", err)
	}
}

// Concurrent readers, writers and a compactor under -race: every acknowledged
// add of a distinct doc must be visible afterwards, and lookups must never
// return a removed doc's stale sealed version once Remove returned.
func TestSegmentedConcurrentOpsDuringCompaction(t *testing.T) {
	seg, err := NewSegmented(SegmentedOptions{MemtableCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	for i := 0; i < 64; i++ {
		if err := seg.Add(DocID(fmt.Sprintf("base-%d", i)), map[Term]uint64{"common": 1, Term(fmt.Sprintf("b%d", i)): 2}); err != nil {
			t.Fatal(err)
		}
	}
	var writersWG, bgWG sync.WaitGroup
	stop := make(chan struct{})
	// Compactor.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := seg.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers.
	for r := 0; r < 3; r++ {
		bgWG.Add(1)
		go func(r int) {
			defer bgWG.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := seg.Lookup(map[Term]uint64{"common": 1, Term(fmt.Sprintf("b%d", rng.Intn(64))): 1}, 5)
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						t.Error("unsorted results under concurrency")
						return
					}
				}
			}
		}(r)
	}
	// Writers: each owns a disjoint doc range.
	const writers, perWriter = 4, 80
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				doc := DocID(fmt.Sprintf("w%d-%d", w, i))
				if err := seg.Add(doc, map[Term]uint64{"common": 1, Term(fmt.Sprintf("u-%s", doc)): 3}); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					seg.Remove(doc)
				}
			}
		}(w)
	}
	// Let writers finish, then stop readers/compactor.
	writersWG.Wait()
	close(stop)
	bgWG.Wait()

	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			doc := DocID(fmt.Sprintf("w%d-%d", w, i))
			want := i%7 != 0
			if got := seg.Has(doc); got != want {
				t.Fatalf("doc %s present=%v, want %v", doc, got, want)
			}
			if want {
				res := seg.Lookup(map[Term]uint64{Term(fmt.Sprintf("u-%s", doc)): 1}, 1)
				if len(res) != 1 || res[0].Doc != doc {
					t.Fatalf("unique lookup for %s got %v", doc, res)
				}
			}
		}
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := seg.Stats(); st.SealedSegments > 1 {
		t.Errorf("final compaction left %d sealed segments", st.SealedSegments)
	}
}
