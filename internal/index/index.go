// Package index implements the server-side retrieval substrate: a dynamic
// inverted index with TF-IDF ranked search, per-term champion posting lists,
// and disk spill with periodic merge for indexes that outgrow main memory
// (paper §VI). One index instance serves one modality of one repository.
//
// Index keys are opaque term strings — Sparse-DPE tokens for text, visual
// word ids for images — so the same structure works in the encrypted domain
// without modification, which is precisely the property MIE's design buys.
package index

import (
	"container/heap"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mie/internal/text"
)

// DocID is a deterministic data-object identifier (the ID(d) the scheme is
// allowed to leak).
type DocID string

// Term is an opaque index key: a Sparse-DPE token, a visual-word id, etc.
type Term string

// Result is one ranked search hit.
type Result struct {
	Doc   DocID
	Score float64
}

// Ranking selects the term-weighting function used by Search.
type Ranking int

const (
	// RankTFIDF is the classic tf·idf weighting the paper's prototype uses.
	RankTFIDF Ranking = iota
	// RankBM25 is Okapi BM25 with standard parameters — the "more complex
	// functions could be used without loss of generality" option of §VI.
	RankBM25
)

// Options configures an Inverted index.
type Options struct {
	// ChampionSize, when positive, caps the number of postings kept in
	// memory per term to the top-ChampionSize by frequency ("champion
	// lists"); the remainder spills to disk. Zero disables spilling.
	ChampionSize int
	// SpillDir is where spilled postings are written. Required when
	// ChampionSize > 0.
	SpillDir string
	// Ranking selects the scoring function (default tf·idf).
	Ranking Ranking
}

// Inverted is a dynamic inverted index with ranked retrieval.
// It is safe for concurrent use.
type Inverted struct {
	mu        sync.RWMutex
	postings  map[Term]map[DocID]uint64
	docTerms  map[DocID]map[Term]struct{} // reverse map for O(|d|) removal
	docLens   map[DocID]uint64            // total term frequency per doc (BM25)
	totalLen  uint64
	docCount  int
	opts      Options
	spill     *spillLog
	spilled   map[Term]int // count of spilled postings per term
	tombstone map[DocID]struct{}
}

// New creates an index. With ChampionSize > 0 the spill directory is
// created eagerly so configuration errors surface at startup.
func New(opts Options) (*Inverted, error) {
	idx := &Inverted{
		postings:  make(map[Term]map[DocID]uint64),
		docTerms:  make(map[DocID]map[Term]struct{}),
		docLens:   make(map[DocID]uint64),
		opts:      opts,
		spilled:   make(map[Term]int),
		tombstone: make(map[DocID]struct{}),
	}
	if opts.ChampionSize > 0 {
		if opts.SpillDir == "" {
			return nil, errors.New("index: ChampionSize requires SpillDir")
		}
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("index: create spill dir: %w", err)
		}
		sl, err := openSpillLog(filepath.Join(opts.SpillDir, "postings.spill"))
		if err != nil {
			return nil, err
		}
		idx.spill = sl
	}
	return idx, nil
}

// Close releases the spill log, if any.
func (ix *Inverted) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.spill == nil {
		return nil
	}
	return ix.spill.close()
}

// DocCount returns the number of indexed documents.
func (ix *Inverted) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docCount
}

// TermCount returns the number of distinct terms currently in memory.
func (ix *Inverted) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Has reports whether doc is indexed.
func (ix *Inverted) Has(doc DocID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.docTerms[doc]
	return ok
}

// Add indexes (or re-indexes) a document given its term-frequency map.
// Re-adding an existing document replaces its previous postings, matching
// the paper's Update semantics (remove then add).
func (ix *Inverted) Add(doc DocID, terms map[Term]uint64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.addLocked(doc, terms)
}

// BatchDoc pairs one document with its term-frequency map for AddBatch.
type BatchDoc struct {
	Doc   DocID
	Terms map[Term]uint64
}

// AddBatch indexes a batch of documents under a single lock acquisition —
// the bulk path epoch rebuilds use (Train re-creating an index from a store
// snapshot). Semantically identical to calling Add once per entry, in order,
// minus len(docs)-1 lock round-trips. On error the batch stops at the
// offending document; earlier entries remain indexed.
func (ix *Inverted) AddBatch(docs []BatchDoc) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, d := range docs {
		if err := ix.addLocked(d.Doc, d.Terms); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Inverted) addLocked(doc DocID, terms map[Term]uint64) error {
	if doc == "" {
		return errors.New("index: empty DocID")
	}
	if _, ok := ix.docTerms[doc]; ok {
		ix.removeLocked(doc)
	}
	delete(ix.tombstone, doc)
	set := make(map[Term]struct{}, len(terms))
	var docLen uint64
	for term, freq := range terms {
		if freq == 0 {
			continue
		}
		docLen += freq
		pl := ix.postings[term]
		if pl == nil {
			pl = make(map[DocID]uint64)
			ix.postings[term] = pl
		}
		pl[doc] = freq
		set[term] = struct{}{}
		if ix.opts.ChampionSize > 0 && len(pl) > ix.opts.ChampionSize {
			if err := ix.evictLocked(term, pl); err != nil {
				return err
			}
		}
	}
	ix.docTerms[doc] = set
	ix.docLens[doc] = docLen
	ix.totalLen += docLen
	ix.docCount++
	return nil
}

// evictLocked spills the lowest-frequency posting of term to disk, keeping
// the in-memory list a champion list of the top entries.
func (ix *Inverted) evictLocked(term Term, pl map[DocID]uint64) error {
	var victim DocID
	var vf uint64
	first := true
	for d, f := range pl {
		if first || f < vf || (f == vf && d < victim) {
			victim, vf, first = d, f, false
		}
	}
	if err := ix.spill.append(spillRecord{Term: term, Doc: victim, Freq: vf}); err != nil {
		return err
	}
	delete(pl, victim)
	ix.spilled[term]++
	// The victim doc still references the term; docTerms stays as-is so
	// removal can tombstone spilled postings.
	return nil
}

// Remove deletes a document and all its postings. Removing an unknown doc is
// a no-op, mirroring CLOUD.Remove in Algorithm 8.
func (ix *Inverted) Remove(doc DocID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(doc)
}

func (ix *Inverted) removeLocked(doc DocID) {
	set, ok := ix.docTerms[doc]
	if !ok {
		return
	}
	for term := range set {
		if pl := ix.postings[term]; pl != nil {
			delete(pl, doc)
			if len(pl) == 0 && ix.spilled[term] == 0 {
				delete(ix.postings, term)
			}
		}
	}
	delete(ix.docTerms, doc)
	ix.totalLen -= ix.docLens[doc]
	delete(ix.docLens, doc)
	ix.docCount--
	if ix.spill != nil {
		// Spilled postings for this doc become stale; tombstone them until
		// the next merge compacts the log.
		ix.tombstone[doc] = struct{}{}
	}
}

// PostingsLen returns the number of in-memory postings for a term.
func (ix *Inverted) PostingsLen(term Term) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[term])
}

// SpilledLen returns the number of postings for term currently on disk
// (including any that are tombstoned but not yet merged).
func (ix *Inverted) SpilledLen(term Term) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.spilled[term]
}

// docFreq returns the total document frequency of a term (memory + disk).
func (ix *Inverted) docFreqLocked(term Term) int {
	return len(ix.postings[term]) + ix.spilled[term]
}

// Search ranks documents against the query term-frequency map with TF-IDF
// and returns the top k. Only champion (in-memory) postings are scanned,
// which is the scalability trade the paper makes: champions hold the top
// ranked objects per term, so precision is preserved.
func (ix *Inverted) Search(query map[Term]uint64, k int) []Result {
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var avgLen float64
	if ix.docCount > 0 {
		avgLen = float64(ix.totalLen) / float64(ix.docCount)
	}
	scores := make(map[DocID]float64)
	for term, qf := range query {
		pl := ix.postings[term]
		if len(pl) == 0 && ix.spilled[term] == 0 {
			continue
		}
		df := ix.docFreqLocked(term)
		for doc, tf := range pl {
			var w float64
			if ix.opts.Ranking == RankBM25 {
				w = text.BM25(tf, ix.docCount, df, float64(ix.docLens[doc]), avgLen, 0, 0)
			} else {
				w = text.TFIDF(tf, ix.docCount, df)
			}
			scores[doc] += float64(qf) * w
		}
	}
	return TopK(scores, k)
}

// Merge compacts the spill log: postings of removed documents are dropped
// and the survivors are reloaded into memory (then re-evicted down to the
// champion bound). This is the periodic merge of §VI.
func (ix *Inverted) Merge() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.spill == nil {
		return nil
	}
	records, err := ix.spill.readAll()
	if err != nil {
		return err
	}
	if err := ix.spill.reset(); err != nil {
		return err
	}
	ix.spilled = make(map[Term]int)
	for _, rec := range records {
		if _, dead := ix.tombstone[rec.Doc]; dead {
			continue
		}
		// A fresher in-memory posting (from a re-add) wins over the spilled one.
		pl := ix.postings[rec.Term]
		if pl == nil {
			pl = make(map[DocID]uint64)
			ix.postings[rec.Term] = pl
		}
		if _, ok := pl[rec.Doc]; ok {
			continue
		}
		pl[rec.Doc] = rec.Freq
		if ix.opts.ChampionSize > 0 && len(pl) > ix.opts.ChampionSize {
			if err := ix.evictLocked(rec.Term, pl); err != nil {
				return err
			}
		}
	}
	ix.tombstone = make(map[DocID]struct{})
	return nil
}

// TopK selects the k highest-scoring documents from a score map using a
// bounded min-heap (O(n log k), no full materialize-and-sort), breaking score
// ties by DocID for determinism. Non-positive scores are dropped. Exported so
// every ranked-scan path — index lookups, the engines' linear fallbacks, the
// ANN re-rank — truncates through the same selection with the same tie-break.
func TopK(scores map[DocID]float64, k int) []Result {
	h := &resultHeap{}
	heap.Init(h)
	for doc, s := range scores {
		if s <= 0 {
			continue
		}
		r := Result{Doc: doc, Score: s}
		if h.Len() < k {
			heap.Push(h, r)
		} else if less((*h)[0], r) {
			(*h)[0] = r
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		r, ok := heap.Pop(h).(Result)
		if !ok {
			break // unreachable: heap only holds Results
		}
		out[i] = r
	}
	return out
}

// less orders results ascending: by score, then by DocID (reversed so that
// lexicographically smaller ids rank higher on equal scores).
func less(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SortResults orders results descending by score (ties by DocID ascending),
// the canonical presentation order.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return less(rs[j], rs[i]) })
}

// spillRecord is one on-disk posting.
type spillRecord struct {
	Term Term
	Doc  DocID
	Freq uint64
}

// spillLog is an append-only gob log of spilled postings.
type spillLog struct {
	path string
	f    *os.File
	enc  *gob.Encoder
}

func openSpillLog(path string) (*spillLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("index: open spill log: %w", err)
	}
	return &spillLog{path: path, f: f, enc: gob.NewEncoder(f)}, nil
}

func (sl *spillLog) append(rec spillRecord) error {
	if err := sl.enc.Encode(rec); err != nil {
		return fmt.Errorf("index: spill append: %w", err)
	}
	return nil
}

func (sl *spillLog) readAll() ([]spillRecord, error) {
	f, err := os.Open(sl.path)
	if err != nil {
		return nil, fmt.Errorf("index: open spill for read: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var out []spillRecord
	for {
		var rec spillRecord
		if err := dec.Decode(&rec); err != nil {
			break // EOF or truncated tail: everything decoded so far is valid
		}
		out = append(out, rec)
	}
	return out, nil
}

func (sl *spillLog) reset() error {
	if err := sl.f.Close(); err != nil {
		return fmt.Errorf("index: close spill: %w", err)
	}
	f, err := os.OpenFile(sl.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("index: reset spill: %w", err)
	}
	sl.f = f
	sl.enc = gob.NewEncoder(f)
	return nil
}

func (sl *spillLog) close() error {
	return sl.f.Close()
}
