package index

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mie/internal/text"
)

// ErrClosed is returned by mutating operations on a closed Segmented index.
var ErrClosed = errors.New("index: closed")

// SegmentedOptions configures a Segmented index.
type SegmentedOptions struct {
	// Index carries the per-segment options. SpillDir, when champion lists
	// are enabled, is treated as a parent directory: every segment spills
	// into its own SpillDir/seg-<id> subdirectory so segment lifecycles
	// (seal, compact, drop) stay independent on disk.
	Index Options
	// MemtableCap auto-seals the memtable once it holds this many documents.
	// Zero means DefaultMemtableCap; negative disables auto-sealing.
	MemtableCap int
	// CompactSegments is the sealed-segment count at which NeedsCompaction
	// reports true. Zero means DefaultCompactSegments.
	CompactSegments int
	// OnSeal, when set, is called (outside the index lock) after every seal —
	// the hook a background compactor uses to learn that work may exist.
	OnSeal func()
}

// Defaults for SegmentedOptions.
const (
	DefaultMemtableCap     = 1024
	DefaultCompactSegments = 4
)

func (o *SegmentedOptions) setDefaults() {
	if o.MemtableCap == 0 {
		o.MemtableCap = DefaultMemtableCap
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = DefaultCompactSegments
	}
}

// segment is one Inverted index incarnation inside a Segmented facade. Once
// sealed its Inverted is never mutated again; only compaction retires it.
type segment struct {
	id       int
	idx      *Inverted
	spillDir string // this segment's private spill dir ("" without champions)
}

// Segmented is an LSM-flavored composition of Inverted indexes: all writes
// land in a small mutable memtable segment, Seal moves the memtable into an
// immutable sealed-segment list, and Compact merges sealed segments into one
// (dropping postings of removed or superseded documents). Lookup merges
// postings across every segment and scores them exactly as a single Inverted
// over the same live documents would.
//
// Document liveness is tracked by an owner map (doc -> segment id of its
// current version). Remove and re-Add of a document whose postings sit in a
// sealed segment just retarget the owner map — the stale sealed postings
// become tombstoned garbage that Lookup skips and Compact drops.
//
// Segmented is safe for concurrent use. All operations take the facade lock;
// Compact builds its merged segment from immutable inputs without holding it.
type Segmented struct {
	mu     sync.RWMutex
	opts   SegmentedOptions
	nextID int
	mem    *segment
	sealed []*segment // oldest first
	owner  map[DocID]int
	// dead counts tombstoned document versions still occupying sealed
	// segments — the garbage that compaction reclaims.
	dead        int
	totalLen    uint64 // sum of live document lengths (BM25 avgdl)
	compactions uint64
	closed      bool

	// compactMu serializes Compact calls so two compactors never race to
	// retire the same source segments.
	compactMu sync.Mutex
}

// NewSegmented creates an empty Segmented index.
func NewSegmented(opts SegmentedOptions) (*Segmented, error) {
	opts.setDefaults()
	s := &Segmented{
		opts:  opts,
		owner: make(map[DocID]int),
	}
	if err := s.freshMemtableLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// freshMemtableLocked installs a new empty memtable segment.
func (s *Segmented) freshMemtableLocked() error {
	s.nextID++
	id := s.nextID
	opts := s.opts.Index
	dir := ""
	if opts.ChampionSize > 0 {
		dir = filepath.Join(opts.SpillDir, fmt.Sprintf("seg-%d", id))
		opts.SpillDir = dir
	}
	idx, err := New(opts)
	if err != nil {
		return err
	}
	s.mem = &segment{id: id, idx: idx, spillDir: dir}
	return nil
}

// segmentsLocked returns all segments, oldest sealed first, memtable last.
func (s *Segmented) segmentsLocked() []*segment {
	out := make([]*segment, 0, len(s.sealed)+1)
	out = append(out, s.sealed...)
	return append(out, s.mem)
}

func (s *Segmented) segByIDLocked(id int) *segment {
	if s.mem.id == id {
		return s.mem
	}
	for _, seg := range s.sealed {
		if seg.id == id {
			return seg
		}
	}
	return nil
}

// Add indexes (or re-indexes) a document in the memtable. A previous version
// in a sealed segment is tombstoned via the owner map; one in the memtable is
// removed in place. The memtable auto-seals past MemtableCap.
func (s *Segmented) Add(doc DocID, terms map[Term]uint64) error {
	s.mu.Lock()
	err := s.addLocked(doc, terms)
	sealedNow := false
	if err == nil && s.opts.MemtableCap > 0 && s.mem.idx.DocCount() >= s.opts.MemtableCap {
		if serr := s.sealLocked(); serr != nil {
			err = serr
		} else {
			sealedNow = true
		}
	}
	cb := s.opts.OnSeal
	s.mu.Unlock()
	if sealedNow && cb != nil {
		cb()
	}
	return err
}

func (s *Segmented) addLocked(doc DocID, terms map[Term]uint64) error {
	if s.closed {
		return ErrClosed
	}
	if own, ok := s.owner[doc]; ok {
		if seg := s.segByIDLocked(own); seg != nil {
			s.totalLen -= seg.idx.docLenView(doc)
			if seg == s.mem {
				seg.idx.Remove(doc)
			} else {
				s.dead++
			}
		}
		delete(s.owner, doc)
	}
	if err := s.mem.idx.Add(doc, terms); err != nil {
		return err
	}
	s.owner[doc] = s.mem.id
	s.totalLen += s.mem.idx.docLenView(doc)
	return nil
}

// AddBatch is the bulk segment-build primitive: the entire batch lands in the
// current memtable under one lock acquisition (no mid-batch auto-seal), so an
// epoch rebuild can pour a store snapshot into exactly one segment and Seal
// it. On error the batch stops at the offending document; earlier entries
// remain indexed. If the batch pushed the memtable past MemtableCap it is
// sealed once at the end.
func (s *Segmented) AddBatch(docs []BatchDoc) error {
	s.mu.Lock()
	var err error
	for _, d := range docs {
		if err = s.addLocked(d.Doc, d.Terms); err != nil {
			break
		}
	}
	sealedNow := false
	if err == nil && s.opts.MemtableCap > 0 && s.mem.idx.DocCount() >= s.opts.MemtableCap {
		if serr := s.sealLocked(); serr != nil {
			err = serr
		} else {
			sealedNow = true
		}
	}
	cb := s.opts.OnSeal
	s.mu.Unlock()
	if sealedNow && cb != nil {
		cb()
	}
	return err
}

// Remove tombstones a document. Removing an unknown doc is a no-op.
func (s *Segmented) Remove(doc DocID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	own, ok := s.owner[doc]
	if !ok {
		return
	}
	if seg := s.segByIDLocked(own); seg != nil {
		s.totalLen -= seg.idx.docLenView(doc)
		if seg == s.mem {
			seg.idx.Remove(doc)
		} else {
			s.dead++
		}
	}
	delete(s.owner, doc)
}

// Seal freezes the current memtable into the sealed-segment list and starts a
// fresh one. Sealing an empty memtable is a no-op.
func (s *Segmented) Seal() error {
	s.mu.Lock()
	err := s.sealLocked()
	sealedNow := err == nil
	cb := s.opts.OnSeal
	s.mu.Unlock()
	if sealedNow && cb != nil {
		cb()
	}
	return err
}

func (s *Segmented) sealLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.mem.idx.DocCount() == 0 {
		return nil
	}
	s.sealed = append(s.sealed, s.mem)
	return s.freshMemtableLocked()
}

// Has reports whether doc is live in the index.
func (s *Segmented) Has(doc DocID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.owner[doc]
	return ok
}

// DocCount returns the number of live documents.
func (s *Segmented) DocCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.owner)
}

// SegmentStats is a point-in-time snapshot of segment-level state.
type SegmentStats struct {
	SealedSegments int
	MemtableDocs   int
	LiveDocs       int
	DeadDocs       int // tombstoned versions awaiting compaction
	Compactions    uint64
}

// Stats returns current segment statistics.
func (s *Segmented) Stats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return SegmentStats{
		SealedSegments: len(s.sealed),
		MemtableDocs:   s.mem.idx.DocCount(),
		LiveDocs:       len(s.owner),
		DeadDocs:       s.dead,
		Compactions:    s.compactions,
	}
}

// NeedsCompaction reports whether background compaction would reclaim
// meaningful space or merge enough segments to matter: the sealed-segment
// count reached CompactSegments, or tombstoned garbage outgrew the live set.
func (s *Segmented) NeedsCompaction() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed || len(s.sealed) == 0 {
		return false
	}
	if len(s.sealed) >= s.opts.CompactSegments {
		return true
	}
	return s.dead > 0 && s.dead >= len(s.owner)/2 && s.dead >= 32
}

// Lookup ranks live documents against the query term-frequency map, merging
// postings across the memtable and every sealed segment, and returns the top
// k. Scores match a single Inverted holding the same live documents: document
// frequency counts each live doc once (postings in sealed segments whose doc
// has been removed or re-added elsewhere are skipped via the owner map), and
// BM25 length statistics aggregate across segments.
func (s *Segmented) Lookup(query map[Term]uint64, k int) []Result {
	if k <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	docCount := len(s.owner)
	var avgLen float64
	if docCount > 0 {
		avgLen = float64(s.totalLen) / float64(docCount)
	}
	segs := s.segmentsLocked()
	type post struct {
		doc    DocID
		tf     uint64
		docLen float64
	}
	var posts []post
	scores := make(map[DocID]float64)
	for term, qf := range query {
		posts = posts[:0]
		df := 0
		for _, seg := range segs {
			for doc, tf := range seg.idx.postingsView(term) {
				if own, ok := s.owner[doc]; !ok || own != seg.id {
					continue // tombstoned or superseded version
				}
				posts = append(posts, post{doc: doc, tf: tf, docLen: float64(seg.idx.docLenView(doc))})
			}
			df += seg.idx.spilledView(term)
		}
		df += len(posts)
		if df == 0 {
			continue
		}
		for _, p := range posts {
			var w float64
			if s.opts.Index.Ranking == RankBM25 {
				w = text.BM25(p.tf, docCount, df, p.docLen, avgLen, 0, 0)
			} else {
				w = text.TFIDF(p.tf, docCount, df)
			}
			scores[p.doc] += float64(qf) * w
		}
	}
	return TopK(scores, k)
}

// Search is Lookup under the name the repository layer uses for every index
// type, so Segmented is a drop-in for Inverted in ranked retrieval.
func (s *Segmented) Search(query map[Term]uint64, k int) []Result {
	return s.Lookup(query, k)
}

// Compact merges every sealed segment into a single new immutable segment,
// dropping tombstoned garbage and merging spilled postings back up to the
// champion bound. The merged segment is built from the immutable sources
// without holding the facade lock (a brief read lock snapshots the segment
// list and owner map), so Lookup/Add/Remove proceed concurrently; a short
// write lock swaps it in. Documents that were removed or re-added while the
// merge ran are handled by the owner map: their stale copies in the merged
// segment are skipped at read time and reclaimed by the next compaction.
func (s *Segmented) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Phase 1: snapshot sources and ownership, and reserve the merged
	// segment's id, under a brief lock.
	s.mu.Lock()
	if s.closed || len(s.sealed) == 0 {
		s.mu.Unlock()
		return nil
	}
	srcs := append([]*segment(nil), s.sealed...)
	srcIDs := make(map[int]bool, len(srcs))
	for _, seg := range srcs {
		srcIDs[seg.id] = true
	}
	ownedBy := make(map[DocID]int)
	for doc, own := range s.owner {
		if srcIDs[own] {
			ownedBy[doc] = own
		}
	}
	s.nextID++
	mergedID := s.nextID
	s.mu.Unlock()

	// Phase 2: build the merged segment off-lock from immutable sources.
	opts := s.opts.Index
	dir := ""
	if opts.ChampionSize > 0 {
		dir = filepath.Join(opts.SpillDir, fmt.Sprintf("seg-%d", mergedID))
		opts.SpillDir = dir
	}
	idx, err := New(opts)
	if err != nil {
		return err
	}
	merged := &segment{id: mergedID, idx: idx, spillDir: dir}
	discard := func() {
		merged.idx.Close()
		if merged.spillDir != "" {
			os.RemoveAll(merged.spillDir)
		}
	}
	for _, seg := range srcs {
		id := seg.id
		batch, err := seg.idx.liveDocs(func(doc DocID) bool { return ownedBy[doc] == id })
		if err != nil {
			discard()
			return err
		}
		if err := merged.idx.AddBatch(batch); err != nil {
			discard()
			return err
		}
	}

	// Phase 3: swap under the write lock.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		discard()
		return nil
	}
	// Keep sealed segments that appeared after the snapshot (seals during the
	// build); the merged segment replaces the sources as the oldest entry.
	var kept []*segment
	for _, seg := range s.sealed {
		if !srcIDs[seg.id] {
			kept = append(kept, seg)
		}
	}
	s.sealed = append([]*segment{merged}, kept...)
	for doc, own := range s.owner {
		if srcIDs[own] {
			s.owner[doc] = merged.id
		}
	}
	s.recountDeadLocked()
	s.compactions++
	s.mu.Unlock()

	// Phase 4: retire the source segments.
	var firstErr error
	for _, seg := range srcs {
		if err := seg.idx.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if seg.spillDir != "" {
			os.RemoveAll(seg.spillDir)
		}
	}
	return firstErr
}

// recountDeadLocked recomputes the tombstoned-garbage counter from scratch:
// every indexed document version not currently owned is garbage.
func (s *Segmented) recountDeadLocked() {
	liveBySeg := make(map[int]int, len(s.sealed)+1)
	for _, own := range s.owner {
		liveBySeg[own]++
	}
	dead := 0
	for _, seg := range s.segmentsLocked() {
		dead += seg.idx.DocCount() - liveBySeg[seg.id]
	}
	s.dead = dead
}

// SegmentBatches returns the live contents grouped by owning segment, oldest
// sealed segment first and the memtable last (always present, possibly
// empty). Loading the groups back with LoadSegments reproduces an equivalent
// segment layout with all garbage dropped — this is the snapshot
// serialization primitive.
func (s *Segmented) SegmentBatches() ([][]BatchDoc, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var groups [][]BatchDoc
	for _, seg := range s.segmentsLocked() {
		id := seg.id
		batch, err := seg.idx.liveDocs(func(doc DocID) bool { return s.owner[doc] == id })
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 && seg != s.mem {
			continue // fully-garbage sealed segment: drop it
		}
		groups = append(groups, batch)
	}
	return groups, nil
}

// LoadSegments rebuilds segment state from SegmentBatches output: every group
// but the last becomes a sealed segment, the last is loaded into the
// memtable. The index must be empty.
func (s *Segmented) LoadSegments(groups [][]BatchDoc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.owner) != 0 || len(s.sealed) != 0 {
		return errors.New("index: LoadSegments on non-empty index")
	}
	for i, group := range groups {
		for _, d := range group {
			if err := s.addLocked(d.Doc, d.Terms); err != nil {
				return err
			}
		}
		if i < len(groups)-1 {
			if err := s.sealLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close releases every segment's resources. Further mutations fail with
// ErrClosed; an in-flight Compact aborts at its swap point.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, seg := range s.segmentsLocked() {
		if err := seg.idx.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- read views used by the facade ---------------------------------------

// postingsView returns the internal posting map for term. Callers must treat
// it as read-only and must hold a lock that excludes writers to this segment
// (the facade read lock does: all facade writes take the write lock, and
// sealed segments are immutable).
func (ix *Inverted) postingsView(term Term) map[DocID]uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.postings[term]
}

// docLenView returns the stored length of doc (0 if absent).
func (ix *Inverted) docLenView(doc DocID) uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docLens[doc]
}

// spilledView returns the on-disk posting count for term.
func (ix *Inverted) spilledView(term Term) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.spilled[term]
}

// liveDocs reconstructs the full term-frequency map of every document
// accepted by keep, merging in-memory postings with spilled ones. Documents
// are returned in DocID order for determinism. Stale spill records (a term
// the doc's latest version no longer contains, or a tombstoned doc) are
// skipped; among duplicate records for one (term, doc) the latest appended
// wins, unless a fresher in-memory posting exists.
func (ix *Inverted) liveDocs(keep func(DocID) bool) ([]BatchDoc, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	docs := make(map[DocID]map[Term]uint64)
	for doc, set := range ix.docTerms {
		if keep != nil && !keep(doc) {
			continue
		}
		docs[doc] = make(map[Term]uint64, len(set))
	}
	for term, pl := range ix.postings {
		for doc, tf := range pl {
			if m, ok := docs[doc]; ok {
				m[term] = tf
			}
		}
	}
	if ix.spill != nil {
		records, err := ix.spill.readAll()
		if err != nil {
			return nil, err
		}
		for _, rec := range records {
			m, ok := docs[rec.Doc]
			if !ok {
				continue
			}
			if _, dead := ix.tombstone[rec.Doc]; dead {
				continue
			}
			set := ix.docTerms[rec.Doc]
			if _, has := set[rec.Term]; !has {
				continue // stale record from a superseded version
			}
			if pl := ix.postings[rec.Term]; pl != nil {
				if _, inMem := pl[rec.Doc]; inMem {
					continue // fresher in-memory posting wins
				}
			}
			m[rec.Term] = rec.Freq
		}
	}
	out := make([]BatchDoc, 0, len(docs))
	for doc, terms := range docs {
		out = append(out, BatchDoc{Doc: doc, Terms: terms})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out, nil
}
