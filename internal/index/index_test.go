package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newMem(t *testing.T) *Inverted {
	t.Helper()
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newSpilling(t *testing.T, champ int) *Inverted {
	t.Helper()
	ix, err := New(Options{ChampionSize: champ, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ix.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return ix
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{ChampionSize: 5}); err == nil {
		t.Error("expected error: ChampionSize without SpillDir")
	}
}

func TestAddEmptyDocID(t *testing.T) {
	ix := newMem(t)
	if err := ix.Add("", map[Term]uint64{"a": 1}); err == nil {
		t.Error("expected error for empty DocID")
	}
}

func TestAddSearchBasic(t *testing.T) {
	ix := newMem(t)
	docs := map[DocID]map[Term]uint64{
		"d1": {"cloud": 3, "secure": 1},
		"d2": {"cloud": 1, "mobile": 5},
		"d3": {"mobile": 2},
	}
	for d, terms := range docs {
		if err := ix.Add(d, terms); err != nil {
			t.Fatal(err)
		}
	}
	if ix.DocCount() != 3 {
		t.Fatalf("DocCount = %d", ix.DocCount())
	}
	res := ix.Search(map[Term]uint64{"mobile": 1}, 10)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(res), res)
	}
	if res[0].Doc != "d2" {
		t.Errorf("top result = %s, want d2 (higher tf)", res[0].Doc)
	}
	if res[0].Score <= res[1].Score {
		t.Error("results not sorted descending")
	}
}

func TestSearchZeroK(t *testing.T) {
	ix := newMem(t)
	if err := ix.Add("d", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if res := ix.Search(map[Term]uint64{"x": 1}, 0); res != nil {
		t.Errorf("k=0 should return nil, got %v", res)
	}
}

func TestSearchUnknownTerm(t *testing.T) {
	ix := newMem(t)
	if err := ix.Add("d", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if res := ix.Search(map[Term]uint64{"nope": 1}, 5); len(res) != 0 {
		t.Errorf("unknown term returned %v", res)
	}
}

func TestUbiquitousTermScoresZero(t *testing.T) {
	ix := newMem(t)
	for i := 0; i < 4; i++ {
		if err := ix.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"every": 1}); err != nil {
			t.Fatal(err)
		}
	}
	// idf = log(4/4) = 0 -> no result should surface.
	if res := ix.Search(map[Term]uint64{"every": 1}, 5); len(res) != 0 {
		t.Errorf("ubiquitous term produced results: %v", res)
	}
}

func TestRemove(t *testing.T) {
	ix := newMem(t)
	if err := ix.Add("d1", map[Term]uint64{"a": 1, "b": 2}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("d2", map[Term]uint64{"a": 1}); err != nil {
		t.Fatal(err)
	}
	ix.Remove("d1")
	if ix.Has("d1") {
		t.Error("d1 still present after Remove")
	}
	if ix.DocCount() != 1 {
		t.Errorf("DocCount = %d, want 1", ix.DocCount())
	}
	for _, r := range ix.Search(map[Term]uint64{"a": 1, "b": 1}, 10) {
		if r.Doc == "d1" {
			t.Error("removed doc surfaced in search")
		}
	}
	// Removing again is a no-op.
	ix.Remove("d1")
	if ix.DocCount() != 1 {
		t.Errorf("double remove changed DocCount to %d", ix.DocCount())
	}
}

func TestReAddReplaces(t *testing.T) {
	ix := newMem(t)
	if err := ix.Add("d", map[Term]uint64{"old": 5}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("d", map[Term]uint64{"new": 5}); err != nil {
		t.Fatal(err)
	}
	if ix.DocCount() != 1 {
		t.Fatalf("DocCount = %d, want 1 after re-add", ix.DocCount())
	}
	if res := ix.Search(map[Term]uint64{"old": 1}, 5); len(res) != 0 {
		t.Errorf("stale term survived re-add: %v", res)
	}
	// With one doc in the corpus idf = 0, so add a decoy to score "new".
	if err := ix.Add("decoy", map[Term]uint64{"decoyterm": 1}); err != nil {
		t.Fatal(err)
	}
	if res := ix.Search(map[Term]uint64{"new": 1}, 5); len(res) != 1 || res[0].Doc != "d" {
		t.Errorf("new term not searchable: %v", res)
	}
}

func TestAddRemoveInverseProperty(t *testing.T) {
	ix := newMem(t)
	rng := rand.New(rand.NewSource(1))
	// Interleave adds and removes; after removing everything the index must
	// be empty again.
	live := make(map[DocID]bool)
	for i := 0; i < 200; i++ {
		d := DocID(fmt.Sprintf("doc%d", rng.Intn(50)))
		if live[d] && rng.Intn(2) == 0 {
			ix.Remove(d)
			delete(live, d)
			continue
		}
		terms := map[Term]uint64{}
		for j := 0; j < 1+rng.Intn(5); j++ {
			terms[Term(fmt.Sprintf("t%d", rng.Intn(20)))] = uint64(1 + rng.Intn(4))
		}
		if err := ix.Add(d, terms); err != nil {
			t.Fatal(err)
		}
		live[d] = true
	}
	if ix.DocCount() != len(live) {
		t.Fatalf("DocCount = %d, want %d", ix.DocCount(), len(live))
	}
	for d := range live {
		ix.Remove(d)
	}
	if ix.DocCount() != 0 {
		t.Errorf("DocCount = %d after removing all", ix.DocCount())
	}
	if ix.TermCount() != 0 {
		t.Errorf("TermCount = %d after removing all", ix.TermCount())
	}
}

func TestTopKLimit(t *testing.T) {
	ix := newMem(t)
	for i := 0; i < 50; i++ {
		if err := ix.Add(DocID(fmt.Sprintf("d%02d", i)), map[Term]uint64{"q": uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Need a decoy so idf > 0.
	if err := ix.Add("decoy", map[Term]uint64{"other": 1}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(map[Term]uint64{"q": 1}, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	if res[0].Doc != "d49" {
		t.Errorf("top doc = %s, want d49", res[0].Doc)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Error("results not in descending score order")
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := newMem(t)
	for _, d := range []DocID{"b", "a", "c"} {
		if err := ix.Add(d, map[Term]uint64{"q": 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Add("decoy", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(map[Term]uint64{"q": 1}, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Doc != "a" || res[1].Doc != "b" || res[2].Doc != "c" {
		t.Errorf("tie break order: %v", res)
	}
}

func TestChampionEviction(t *testing.T) {
	ix := newSpilling(t, 3)
	for i := 0; i < 10; i++ {
		if err := ix.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"hot": uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.PostingsLen("hot"); got != 3 {
		t.Errorf("in-memory postings = %d, want champion size 3", got)
	}
	if got := ix.SpilledLen("hot"); got != 7 {
		t.Errorf("spilled postings = %d, want 7", got)
	}
	if err := ix.Add("decoy", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	// Champions must be the top-frequency docs.
	res := ix.Search(map[Term]uint64{"hot": 1}, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Doc != "d9" || res[1].Doc != "d8" || res[2].Doc != "d7" {
		t.Errorf("champions wrong: %v", res)
	}
}

func TestChampionDocFreqCountsSpilled(t *testing.T) {
	// df must include spilled postings or idf would be inflated.
	ix := newSpilling(t, 2)
	for i := 0; i < 6; i++ {
		if err := ix.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"w": uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Add("decoy", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	ixMem := newMem(t)
	for i := 0; i < 6; i++ {
		if err := ixMem.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"w": uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ixMem.Add("decoy", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	rs := ix.Search(map[Term]uint64{"w": 1}, 1)
	rm := ixMem.Search(map[Term]uint64{"w": 1}, 1)
	if len(rs) != 1 || len(rm) != 1 {
		t.Fatal("missing results")
	}
	if rs[0].Score != rm[0].Score {
		t.Errorf("champion score %v != full-index score %v", rs[0].Score, rm[0].Score)
	}
}

func TestMergeCompactsTombstones(t *testing.T) {
	ix := newSpilling(t, 2)
	for i := 0; i < 8; i++ {
		if err := ix.Add(DocID(fmt.Sprintf("d%d", i)), map[Term]uint64{"w": uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Remove docs whose postings were spilled (low freq ones).
	ix.Remove("d0")
	ix.Remove("d1")
	if err := ix.Merge(); err != nil {
		t.Fatal(err)
	}
	if got := ix.PostingsLen("w") + ix.SpilledLen("w"); got != 6 {
		t.Errorf("postings after merge = %d, want 6", got)
	}
	// Survivors are intact and ranked correctly.
	if err := ix.Add("decoy", map[Term]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(map[Term]uint64{"w": 1}, 2)
	if len(res) != 2 || res[0].Doc != "d7" {
		t.Errorf("post-merge search: %v", res)
	}
}

func TestMergeNoSpillIsNoop(t *testing.T) {
	ix := newMem(t)
	if err := ix.Add("d", map[Term]uint64{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Merge(); err != nil {
		t.Errorf("Merge on memory-only index: %v", err)
	}
}

func TestConcurrentAddSearchRemove(t *testing.T) {
	ix := newMem(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d := DocID(fmt.Sprintf("w%d-d%d", w, i))
				if err := ix.Add(d, map[Term]uint64{Term(fmt.Sprintf("t%d", i%10)): 1}); err != nil {
					t.Error(err)
					return
				}
				ix.Search(map[Term]uint64{Term(fmt.Sprintf("t%d", i%10)): 1}, 5)
				if i%3 == 0 {
					ix.Remove(d)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSortResults(t *testing.T) {
	rs := []Result{{Doc: "b", Score: 1}, {Doc: "a", Score: 3}, {Doc: "c", Score: 1}}
	SortResults(rs)
	if rs[0].Doc != "a" || rs[1].Doc != "b" || rs[2].Doc != "c" {
		t.Errorf("SortResults order: %v", rs)
	}
}

func TestBM25Ranking(t *testing.T) {
	ix, err := New(Options{Ranking: RankBM25})
	if err != nil {
		t.Fatal(err)
	}
	// d1 matches with high tf in a short doc, d2 with the same tf in a much
	// longer doc: BM25's length normalization must prefer d1.
	if err := ix.Add("d1", map[Term]uint64{"q": 3, "x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("d2", map[Term]uint64{"q": 3, "f1": 20, "f2": 20, "f3": 20}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("decoy", map[Term]uint64{"other": 1}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(map[Term]uint64{"q": 1}, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Doc != "d1" {
		t.Errorf("BM25 top = %s, want d1 (length normalization): %v", res[0].Doc, res)
	}
	// Under plain TF-IDF the two docs tie (same tf, same df).
	ixT, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []DocID{"d1", "d2"} {
		if err := ixT.Add(d, map[Term]uint64{"q": 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ixT.Add("decoy", map[Term]uint64{"other": 1}); err != nil {
		t.Fatal(err)
	}
	resT := ixT.Search(map[Term]uint64{"q": 1}, 2)
	if len(resT) != 2 || resT[0].Score != resT[1].Score {
		t.Errorf("TF-IDF should tie equal-tf docs: %v", resT)
	}
}

func TestBM25DocLengthTrackedThroughRemove(t *testing.T) {
	ix, err := New(Options{Ranking: RankBM25})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("long", map[Term]uint64{"a": 50, "b": 50}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("short", map[Term]uint64{"q": 1}); err != nil {
		t.Fatal(err)
	}
	ix.Remove("long")
	// After removing the long doc, avg length shrinks; the search must not
	// be skewed by stale totals (just verify it still returns sane scores).
	if err := ix.Add("decoy", map[Term]uint64{"z": 1}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(map[Term]uint64{"q": 1}, 1)
	if len(res) != 1 || res[0].Score <= 0 {
		t.Errorf("post-remove BM25 search: %v", res)
	}
}
