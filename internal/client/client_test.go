package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mie/internal/core"
	"mie/internal/device"
	"mie/internal/leakcheck"
	"mie/internal/obs"
	"mie/internal/wire"
)

var bg = context.Background()

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Error("expected connection error for closed port")
	}
}

// fakeServer accepts connections and answers every request — including the
// hello, which makes clients fall back to lockstep — with the given
// envelope kind/payload.
func fakeServer(t *testing.T, kind string, payload interface{}) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					if _, _, err := wire.ReadFrame(conn); err != nil {
						return
					}
					if _, err := wire.WriteFrame(conn, kind, payload); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// fakeMuxServer accepts one connection, answers the hello with protocol v2,
// and hands the connection to serve.
func fakeMuxServer(t *testing.T, serve func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		env, _, err := wire.ReadFrame(conn)
		if err != nil || env.Kind != wire.KindHello {
			return
		}
		if _, err := wire.WriteFrame(conn, wire.KindHelloResp, wire.HelloResp{Version: wire.ProtocolV2}); err != nil {
			return
		}
		serve(conn)
	}()
	return ln.Addr().String()
}

func TestServerErrorKindSurfaced(t *testing.T) {
	addr := fakeServer(t, wire.KindError, wire.Ack{Err: "nope"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The hello was answered with an error kind: lockstep fallback.
	if got := c.Protocol(); got != wire.ProtocolV1 {
		t.Errorf("negotiated protocol = %d, want v1 fallback", got)
	}
	err = c.Train(bg, "r")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v, want server error text", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("server-reported error not a RemoteError: %T", err)
	}
}

func TestAckErrorSurfaced(t *testing.T) {
	addr := fakeServer(t, wire.KindAck, wire.Ack{Err: "repository not found: x"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Remove(bg, "x", "obj"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
}

func TestSearchRespError(t *testing.T) {
	addr := fakeServer(t, wire.KindSearchResp, wire.SearchResp{Err: "boom"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Search(bg, "r", &core.Query{K: 1}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestGetRespError(t *testing.T) {
	addr := fakeServer(t, wire.KindGetResp, wire.GetResp{Err: "missing"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get(bg, "r", "obj"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v", err)
	}
}

func TestConnClosedMidRequest(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = conn.Close() // hang up without answering
	}()
	c, err := Dial(ln.Addr().String(), device.NewMeter(device.Desktop), WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Train(bg, "r"); err == nil {
		t.Error("expected error after server hangup")
	}
	_ = ln.Close()
}

func TestSetTokenIsAttached(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	gotAuth := make(chan string, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		env, _, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		gotAuth <- env.Auth
		_, _ = wire.WriteFrame(conn, wire.KindAck, wire.Ack{})
	}()
	c, err := Dial(ln.Addr().String(), nil, WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken("bearer-xyz")
	if err := c.Train(bg, "r"); err != nil {
		t.Fatal(err)
	}
	if auth := <-gotAuth; auth != "bearer-xyz" {
		t.Errorf("server saw auth %q", auth)
	}
}

func TestMuxInterleavedResponses(t *testing.T) {
	leakcheck.Check(t)
	// 100 concurrent callers share one connection. The server collects every
	// request before answering any, then replies in a shuffled order — the
	// demux must still route each response to the caller whose ID it echoes.
	const callers = 100
	addr := fakeMuxServer(t, func(conn net.Conn) {
		envs := make([]*wire.Envelope, 0, callers)
		for len(envs) < callers {
			env, _, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			envs = append(envs, env)
		}
		rng := rand.New(rand.NewSource(7))
		rng.Shuffle(len(envs), func(i, j int) { envs[i], envs[j] = envs[j], envs[i] })
		for _, env := range envs {
			var req wire.SearchReq
			if err := env.Decode(&req); err != nil {
				return
			}
			resp, err := wire.NewEnvelope(wire.KindSearchResp, "", env.ID, 0,
				wire.SearchResp{Hits: []core.SearchHit{{ObjectID: req.RepoID}}})
			if err != nil {
				return
			}
			if _, err := wire.WriteEnvelope(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Protocol(); got != wire.ProtocolV2 {
		t.Fatalf("negotiated protocol = %d, want v2", got)
	}
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			repo := fmt.Sprintf("repo-%03d", i)
			hits, err := c.Search(bg, repo, &core.Query{K: 1})
			if err != nil {
				errs <- fmt.Errorf("caller %d: %w", i, err)
				return
			}
			if len(hits) != 1 || hits[0].ObjectID != repo {
				errs <- fmt.Errorf("caller %d got %+v", i, hits)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCancelEmitsCancelFrame(t *testing.T) {
	searchID := make(chan uint64, 1)
	sawCancel := make(chan wire.CancelReq, 1)
	addr := fakeMuxServer(t, func(conn net.Conn) {
		env, _, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		searchID <- env.ID // hold the request: never answer it
		env, _, err = wire.ReadFrame(conn)
		if err != nil || env.Kind != wire.KindCancel {
			return
		}
		var cr wire.CancelReq
		if err := env.Decode(&cr); err == nil {
			sawCancel <- cr
		}
	})
	reg := obs.NewRegistry()
	c, err := Dial(addr, nil, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := c.Search(ctx, "r", &core.Query{K: 1})
		done <- err
	}()
	var id uint64
	select {
	case id = <-searchID:
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the search")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled search returned %v, want context.Canceled", err)
	}
	select {
	case cr := <-sawCancel:
		if cr.ID != id {
			t.Errorf("cancel frame names request %d, want %d", cr.ID, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never received a cancel frame")
	}
	if got := reg.Counter("client_cancel_frames_total").Value(); got != 1 {
		t.Errorf("client_cancel_frames_total = %d, want 1", got)
	}
}

func TestPoisonedConnNotReused(t *testing.T) {
	// Regression: a response abandoned mid-frame leaves the TCP stream at an
	// undefined position. The connection must be poisoned and replaced — not
	// reused, where the next call would misread leftover bytes as its reply.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	var accepts int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := atomic.AddInt32(&accepts, 1)
			go func(conn net.Conn, n int32) {
				defer conn.Close()
				if n == 1 {
					if _, _, err := wire.ReadFrame(conn); err != nil {
						return
					}
					// Header promises 50 bytes; send 5 and stall: the reply is
					// stuck mid-frame on a connection that stays open.
					_, _ = conn.Write([]byte{0, 0, 0, 50, 1, 2, 3, 4, 5})
					<-release
					return
				}
				for {
					if _, _, err := wire.ReadFrame(conn); err != nil {
						return
					}
					if _, err := wire.WriteFrame(conn, wire.KindAck, wire.Ack{}); err != nil {
						return
					}
				}
			}(conn, n)
		}
	}()
	reg := obs.NewRegistry()
	c, err := Dial(ln.Addr().String(), nil, WithLockstep(), WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(bg, 300*time.Millisecond)
	defer cancel()
	if err := c.Train(ctx, "r"); err == nil {
		t.Fatal("train on the stalled connection should have failed")
	}
	// The next call must run on a fresh connection and succeed.
	if err := c.Train(bg, "r"); err != nil {
		t.Fatalf("train after poison: %v", err)
	}
	if got := atomic.LoadInt32(&accepts); got != 2 {
		t.Errorf("server saw %d connections, want 2 (poisoned conn replaced)", got)
	}
	if got := reg.Counter("client_reconnects_total").Value(); got != 1 {
		t.Errorf("client_reconnects_total = %d, want 1", got)
	}
}

func TestIdempotentCallReconnects(t *testing.T) {
	// A server that drops the first connection: Search (idempotent) retries
	// on a fresh one and succeeds without the caller noticing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var accepts int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if atomic.AddInt32(&accepts, 1) == 1 {
				_ = conn.Close()
				continue
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					if _, _, err := wire.ReadFrame(conn); err != nil {
						return
					}
					if _, err := wire.WriteFrame(conn, wire.KindSearchResp,
						wire.SearchResp{Hits: []core.SearchHit{{ObjectID: "x"}}}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	reg := obs.NewRegistry()
	c, err := Dial(ln.Addr().String(), nil, WithLockstep(), WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hits, err := c.Search(bg, "r", &core.Query{K: 1})
	if err != nil {
		t.Fatalf("search did not survive the dropped connection: %v", err)
	}
	if len(hits) != 1 || hits[0].ObjectID != "x" {
		t.Errorf("hits = %+v", hits)
	}
	if got := reg.Counter("client_reconnects_total").Value(); got < 1 {
		t.Errorf("client_reconnects_total = %d, want >= 1", got)
	}
}

func TestMutationNotRetried(t *testing.T) {
	// Update is not idempotent: a transport error surfaces to the caller
	// instead of being silently re-sent.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var accepts int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(&accepts, 1)
			_ = conn.Close()
		}
	}()
	reg := obs.NewRegistry()
	c, err := Dial(ln.Addr().String(), nil, WithLockstep(), WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Update(bg, "r", &core.Update{}); err == nil {
		t.Fatal("update on a dropped connection should fail")
	}
	if got := reg.Counter("client_reconnects_total").Value(); got != 0 {
		t.Errorf("client_reconnects_total = %d, want 0 (mutations must not retry)", got)
	}
	if got := atomic.LoadInt32(&accepts); got != 1 {
		t.Errorf("server saw %d connections, want 1", got)
	}
}

func TestCallsAfterCloseFail(t *testing.T) {
	leakcheck.Check(t)
	addr := fakeServer(t, wire.KindAck, wire.Ack{})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := c.Search(bg, "r", &core.Query{K: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("search after close: %v, want ErrClosed", err)
	}
}
