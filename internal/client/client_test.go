package client

import (
	"net"
	"strings"
	"testing"

	"mie/internal/core"
	"mie/internal/device"
	"mie/internal/wire"
)

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Error("expected connection error for closed port")
	}
}

// fakeServer accepts one connection and answers every request with the
// given envelope kind/payload.
func fakeServer(t *testing.T, kind string, payload interface{}) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			if _, _, err := wire.ReadFrame(conn); err != nil {
				return
			}
			if _, err := wire.WriteFrame(conn, kind, payload); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

func TestServerErrorKindSurfaced(t *testing.T) {
	addr := fakeServer(t, wire.KindError, wire.Ack{Err: "nope"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Train("r"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v, want server error text", err)
	}
}

func TestAckErrorSurfaced(t *testing.T) {
	addr := fakeServer(t, wire.KindAck, wire.Ack{Err: "repository not found: x"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Remove("x", "obj"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
}

func TestSearchRespError(t *testing.T) {
	addr := fakeServer(t, wire.KindSearchResp, wire.SearchResp{Err: "boom"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Search("r", &core.Query{K: 1}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestGetRespError(t *testing.T) {
	addr := fakeServer(t, wire.KindGetResp, wire.GetResp{Err: "missing"})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get("r", "obj"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v", err)
	}
}

func TestConnClosedMidRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = conn.Close() // hang up without answering
	}()
	c, err := Dial(ln.Addr().String(), device.NewMeter(device.Desktop))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Train("r"); err == nil {
		t.Error("expected error after server hangup")
	}
	_ = ln.Close()
}

func TestSetTokenIsAttached(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	gotAuth := make(chan string, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		env, _, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		gotAuth <- env.Auth
		_, _ = wire.WriteFrame(conn, wire.KindAck, wire.Ack{})
	}()
	c, err := Dial(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken("bearer-xyz")
	if err := c.Train("r"); err != nil {
		t.Fatal(err)
	}
	if auth := <-gotAuth; auth != "bearer-xyz" {
		t.Errorf("server saw auth %q", auth)
	}
}
