package client

import (
	"context"
	"fmt"
	"net"
	"time"

	"mie/internal/obs"
	"mie/internal/wire"
)

// Forward relays a pre-encoded request envelope through this connection and
// returns the raw response envelope — the primitive the router tier and
// follower→leader request forwarding are built on. The envelope's Kind,
// Auth, Data and trace context pass through verbatim (so the origin
// client's bearer token and trace survive the extra hop); the multiplexing
// ID and the relative deadline are re-stamped for this hop. The response
// envelope is returned as-is, including KindError frames — the caller
// relays it to its own peer rather than interpreting it.
//
// Like roundTrip, transport errors on idempotent requests are retried on a
// fresh connection with capped backoff; mutations surface the error to the
// caller, who alone knows whether re-sending is safe.
func (c *Conn) Forward(ctx context.Context, env *wire.Envelope, idempotent bool) (resp *wire.Envelope, err error) {
	kind := env.Kind
	start := time.Now()
	defer func() {
		c.reg.Histogram(obs.L("client_forward_seconds", "kind", kind)).Observe(time.Since(start).Seconds())
		if err != nil {
			c.reg.Counter(obs.L("client_forward_errors_total", "kind", kind)).Inc()
		}
	}()
	backoff := reconnectBackoffMin
	for attempt := 0; ; attempt++ {
		out := &wire.Envelope{
			Kind:         env.Kind,
			Auth:         env.Auth,
			TraceID:      env.TraceID,
			SpanID:       env.SpanID,
			TraceSampled: env.TraceSampled,
			Data:         env.Data,
		}
		if dl, ok := ctx.Deadline(); ok {
			timeout := time.Until(dl)
			if timeout <= 0 {
				return nil, context.DeadlineExceeded
			}
			out.TimeoutNanos = int64(timeout)
		}
		var t *transport
		t, err = c.transport()
		if err == nil {
			if t.v2 {
				resp, _, _, err = c.muxExchange(ctx, t, out)
			} else {
				resp, _, _, err = c.lockstepExchange(ctx, t, out)
			}
		}
		if err == nil {
			return resp, nil
		}
		if !idempotent || attempt >= c.retries || !transient(err) || ctx.Err() != nil {
			return nil, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > reconnectBackoffMax {
			backoff = reconnectBackoffMax
		}
	}
}

// Hello probes addr with a bare version handshake on a one-shot connection
// and returns the peer's HelloResp — the router's health check, carrying
// the node's replication role and caught-up state. The probe uses its own
// short-lived connection so it can never poison pooled request traffic.
func Hello(addr string, timeout time.Duration) (wire.HelloResp, error) {
	var hr wire.HelloResp
	tcp, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return hr, fmt.Errorf("client: hello dial %s: %w", addr, err)
	}
	defer func() { _ = tcp.Close() }()
	_ = tcp.SetDeadline(time.Now().Add(timeout))
	if _, err := wire.WriteFrame(tcp, wire.KindHello, wire.Hello{MaxVersion: wire.ProtocolV2}); err != nil {
		return hr, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	env, _, err := wire.ReadFrame(tcp)
	if err != nil {
		return hr, fmt.Errorf("client: hello response from %s: %w", addr, err)
	}
	if env.Kind != wire.KindHelloResp {
		return hr, fmt.Errorf("client: %s answered hello with %s", addr, env.Kind)
	}
	if err := env.Decode(&hr); err != nil {
		return hr, err
	}
	return hr, nil
}
