// Package client provides the network bindings of the MIE client component:
// it speaks the wire protocol to a server hosting core.Service, and couples
// each exchange to a device.Meter so the figures' Network sub-operation can
// be attributed per call.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mie/internal/core"
	"mie/internal/device"
	"mie/internal/obs"
	"mie/internal/wire"
)

// Option customizes a Conn.
type Option func(*Conn)

// WithObservability records the connection's metrics into reg instead of the
// process-wide obs.Default() registry.
func WithObservability(reg *obs.Registry) Option {
	return func(c *Conn) { c.reg = reg }
}

// Conn is a client connection to one MIE server. Calls are serialized over
// a single TCP connection (one in-flight request per Conn); open several
// Conns for parallelism.
//
// Every round trip records a client_request_seconds{kind=...} latency
// histogram and tx/rx byte counters, so the client-vs-cloud latency split of
// the paper's Table 2 can be read off a live deployment: client-side wall
// time is client_request_seconds, the cloud's share of it is the matching
// server_request_seconds, and the difference is the network.
type Conn struct {
	mu    sync.Mutex
	tcp   net.Conn
	meter *device.Meter
	reg   *obs.Registry
	token string
}

// Dial connects to an MIE server. meter may be nil.
func Dial(addr string, meter *device.Meter, opts ...Option) (*Conn, error) {
	tcp, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Conn{tcp: tcp, meter: meter}
	for _, opt := range opts {
		opt(c)
	}
	if c.reg == nil {
		c.reg = obs.Default()
	}
	return c, nil
}

// Close shuts the connection down.
func (c *Conn) Close() error { return c.tcp.Close() }

// SetToken attaches a bearer authorization token (minted by the repository
// owner's auth.Authority) to every subsequent request.
func (c *Conn) SetToken(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.token = token
}

// roundTrip sends one request and reads one response, accounting bytes to
// the given cost category.
func (c *Conn) roundTrip(cat device.Category, kind string, req, resp interface{}) (err error) {
	start := time.Now()
	defer func() {
		c.reg.Histogram(obs.L("client_request_seconds", "kind", kind)).Observe(time.Since(start).Seconds())
		if err != nil {
			c.reg.Counter(obs.L("client_request_errors_total", "kind", kind)).Inc()
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	up, err := wire.WriteFrameAuth(c.tcp, kind, c.token, req)
	if err != nil {
		return err
	}
	env, down, err := wire.ReadFrame(c.tcp)
	if err != nil {
		return fmt.Errorf("client: %s response: %w", kind, err)
	}
	c.reg.Counter("client_tx_bytes_total").Add(int64(up))
	c.reg.Counter("client_rx_bytes_total").Add(int64(down))
	if c.meter != nil {
		c.meter.AddTransfer(cat, int64(up), int64(down))
	}
	if env.Kind == wire.KindError {
		var ack wire.Ack
		if derr := env.Decode(&ack); derr == nil && ack.Err != "" {
			return errors.New(ack.Err)
		}
		return errors.New("client: server rejected request")
	}
	return env.Decode(resp)
}

// CreateRepository asks the server to initialize a repository.
func (c *Conn) CreateRepository(repoID string, opts wire.RepoOptions) error {
	var ack wire.Ack
	if err := c.roundTrip(device.Network, wire.KindCreateRepo, wire.CreateRepoReq{RepoID: repoID, Opts: opts}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Train triggers cloud-side training (free for the client: the only cost is
// the request round trip, which is the point of MIE).
func (c *Conn) Train(repoID string) error {
	var ack wire.Ack
	if err := c.roundTrip(device.Network, wire.KindTrain, wire.TrainReq{RepoID: repoID}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Update uploads a prepared encrypted update.
func (c *Conn) Update(repoID string, up *core.Update) error {
	var ack wire.Ack
	if err := c.roundTrip(device.Network, wire.KindUpdate, wire.UpdateReq{RepoID: repoID, Update: *up}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Remove deletes an object from the repository.
func (c *Conn) Remove(repoID, objectID string) error {
	var ack wire.Ack
	if err := c.roundTrip(device.Network, wire.KindRemove, wire.RemoveReq{RepoID: repoID, ObjectID: objectID}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Search runs a prepared multimodal query and returns ranked hits.
func (c *Conn) Search(repoID string, q *core.Query) ([]core.SearchHit, error) {
	var resp wire.SearchResp
	if err := c.roundTrip(device.Network, wire.KindSearch, wire.SearchReq{RepoID: repoID, Query: *q}, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Hits, nil
}

// Get fetches one stored ciphertext and its owner.
func (c *Conn) Get(repoID, objectID string) (ciphertext []byte, owner string, err error) {
	var resp wire.GetResp
	if err := c.roundTrip(device.Network, wire.KindGet, wire.GetReq{RepoID: repoID, ObjectID: objectID}, &resp); err != nil {
		return nil, "", err
	}
	if resp.Err != "" {
		return nil, "", errors.New(resp.Err)
	}
	return resp.Ciphertext, resp.Owner, nil
}

func ackErr(ack wire.Ack) error {
	if ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}
