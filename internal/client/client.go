// Package client provides the network bindings of the MIE client component:
// it speaks the wire protocol to a server hosting core.Service, and couples
// each exchange to a device.Meter so the figures' Network sub-operation can
// be attributed per call.
//
// A Conn negotiates protocol v2 at dial time and then multiplexes: one
// writer goroutine serializes outgoing frames, one reader goroutine demuxes
// responses by request ID, and any number of callers share the single TCP
// connection with their requests in flight concurrently — sixteen pipelined
// searches cost one connection, not sixteen. Deadlines on the caller's
// context ride along on the wire, and canceling a context mid-call emits a
// best-effort Cancel frame so the server can abandon the work. Against a v1
// server (which answers the hello with an "unknown kind" error) the Conn
// falls back to lockstep framing: one request in flight at a time, exactly
// the v1 contract.
//
// Transport failures poison the connection — a frame boundary lost to a
// half-written request or half-read response makes every subsequent byte
// stream position undefined, so the TCP connection is discarded rather than
// reused. Idempotent operations (Search, Get, TrainStatus, TrainWait)
// transparently redial with capped exponential backoff; mutations surface
// the error to the caller, who alone knows whether re-sending is safe.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mie/internal/core"
	"mie/internal/device"
	"mie/internal/obs"
	"mie/internal/wire"
)

// RemoteError is an application-level error reported by the server: the
// request was delivered, processed, and rejected. It is never retried (the
// outcome is deterministic) — in contrast to transport errors, which are.
type RemoteError struct {
	Msg string
	// Code is the wire.ErrCode* classification (ErrCodeUnspecified on
	// frames from servers predating typed errors).
	Code int
	// RetryAfter, when positive, is the server's hint for when a rejected
	// request (today: an over-quota one) may be retried.
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string { return e.Msg }

// Unwrap maps the wire code back to the engine sentinel it encodes, so
// errors.Is(err, core.ErrRepoExists) and friends hold across the network
// exactly as they do embedded. Unclassified errors unwrap to nothing.
func (e *RemoteError) Unwrap() error { return wire.Sentinel(e.Code) }

// remoteError builds a RemoteError from a response's error fields.
func remoteError(msg string, code int, retryAfterNanos int64) *RemoteError {
	return &RemoteError{Msg: msg, Code: code, RetryAfter: time.Duration(retryAfterNanos)}
}

// ErrClosed is returned for calls on a Conn after Close.
var ErrClosed = errors.New("client: connection closed")

// Reconnect policy for idempotent calls that hit a transport error.
const (
	defaultMaxRetries   = 3
	reconnectBackoffMin = 25 * time.Millisecond
	reconnectBackoffMax = 800 * time.Millisecond
)

// writeQueueDepth bounds frames queued to the writer goroutine. Callers
// block (cancelably) when it is full; fire-and-forget Cancel frames are
// dropped instead, since the server finishing a canceled request is merely
// wasted work, not an error.
const writeQueueDepth = 64

// Option customizes a Conn.
type Option func(*Conn)

// WithObservability records the connection's metrics into reg instead of the
// process-wide obs.Default() registry.
func WithObservability(reg *obs.Registry) Option {
	return func(c *Conn) { c.reg = reg }
}

// WithLockstep forces protocol v1: no hello exchange, ID-less envelopes and
// one request in flight at a time. Used to benchmark the mux against the
// lockstep baseline and to emulate v1 peers.
func WithLockstep() Option {
	return func(c *Conn) { c.lockstep = true }
}

// WithMaxRetries bounds transparent redial attempts for idempotent calls on
// transport errors; 0 disables reconnection entirely.
func WithMaxRetries(n int) Option {
	return func(c *Conn) { c.retries = n }
}

// WithTracer installs the distributed tracer client operations start traces
// under (head sampling) and join (a trace already on the caller's context).
// Defaults to obs.DefaultTracer().
func WithTracer(t *obs.Tracer) Option {
	return func(c *Conn) { c.tracer = t }
}

// Conn is a client connection to one MIE server.
//
// Every round trip records a client_request_seconds{kind=...} latency
// histogram and tx/rx byte counters, so the client-vs-cloud latency split of
// the paper's Table 2 can be read off a live deployment: client-side wall
// time is client_request_seconds, the cloud's share of it is the matching
// server_request_seconds, and the difference is the network.
type Conn struct {
	addr     string
	meter    *device.Meter
	reg      *obs.Registry
	tracer   *obs.Tracer
	lockstep bool
	retries  int

	mu     sync.Mutex
	token  string
	tr     *transport
	closed bool
	dialed bool // a transport has connected at least once
}

// Dial connects to an MIE server and negotiates the protocol version.
// meter may be nil.
func Dial(addr string, meter *device.Meter, opts ...Option) (*Conn, error) {
	c := &Conn{addr: addr, meter: meter, retries: defaultMaxRetries}
	for _, opt := range opts {
		opt(c)
	}
	if c.reg == nil {
		c.reg = obs.Default()
	}
	if c.tracer == nil {
		c.tracer = obs.DefaultTracer()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.transportLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close shuts the connection down. In-flight calls fail with ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.tr != nil {
		c.tr.fail(ErrClosed)
		c.tr = nil
	}
	return nil
}

// SetToken attaches a bearer authorization token (minted by the repository
// owner's auth.Authority) to every subsequent request.
func (c *Conn) SetToken(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.token = token
}

// Protocol reports the negotiated protocol version of the live transport
// (wire.ProtocolV2 on a multiplexed connection, wire.ProtocolV1 in lockstep
// fallback or when forced by WithLockstep).
func (c *Conn) Protocol() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tr != nil && c.tr.v2 {
		return wire.ProtocolV2
	}
	return wire.ProtocolV1
}

func (c *Conn) tokenSnapshot() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// transport returns the live transport, redialing if the previous one was
// poisoned. Redials after the initial connection are counted as reconnects.
func (c *Conn) transport() (*transport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transportLocked()
}

func (c *Conn) transportLocked() (*transport, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.tr != nil {
		select {
		case <-c.tr.done: // poisoned; discard and redial below
			c.tr = nil
		default:
			return c.tr, nil
		}
	}
	t, err := c.connect()
	if err != nil {
		return nil, err
	}
	if c.dialed {
		c.reg.Counter("client_reconnects_total").Inc()
	}
	c.dialed = true
	c.tr = t
	return t, nil
}

// connect dials and runs version negotiation: a hello answered by HelloResp
// selects the multiplexed protocol; any other answer (a v1 server says
// "unknown kind") selects lockstep. Handshake traffic is connection setup,
// not an operation, so it is not metered.
func (c *Conn) connect() (*transport, error) {
	tcp, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	t := &transport{
		tcp:    tcp,
		reg:    c.reg,
		calls:  make(map[uint64]chan demuxed),
		writeq: make(chan outFrame, writeQueueDepth),
		done:   make(chan struct{}),
	}
	if !c.lockstep {
		if _, err := wire.WriteFrame(tcp, wire.KindHello, wire.Hello{MaxVersion: wire.ProtocolV2}); err != nil {
			_ = tcp.Close()
			return nil, fmt.Errorf("client: hello: %w", err)
		}
		env, _, err := wire.ReadFrame(tcp)
		if err != nil {
			_ = tcp.Close()
			return nil, fmt.Errorf("client: hello response: %w", err)
		}
		if env.Kind == wire.KindHelloResp {
			var hr wire.HelloResp
			if err := env.Decode(&hr); err == nil && hr.Version >= wire.ProtocolV2 {
				t.v2 = true
			}
		}
	}
	if t.v2 {
		go t.writeLoop()
		go t.readLoop()
	}
	return t, nil
}

// demuxed is one response frame routed to its caller.
type demuxed struct {
	env *wire.Envelope
	n   int // bytes on the wire
}

type writeResult struct {
	n   int
	err error
}

type outFrame struct {
	env *wire.Envelope
	res chan writeResult // nil for fire-and-forget frames (Cancel)
}

// transport is one TCP connection plus its mux state. It is immutable after
// connect except for the call table; once poisoned (fail) it is never
// reused — Conn dials a fresh one.
type transport struct {
	tcp    net.Conn
	reg    *obs.Registry
	v2     bool
	writeq chan outFrame
	done   chan struct{}

	lsMu sync.Mutex // lockstep mode: serializes whole round trips

	mu     sync.Mutex
	nextID uint64
	calls  map[uint64]chan demuxed
	err    error

	failOnce sync.Once
}

// fail poisons the transport exactly once: records the cause, drains the
// call table (closing each pending caller's channel), and closes the socket.
// Only the owner of a live map entry may send on its channel, and fail
// removes entries before closing them, so close never races a send.
func (t *transport) fail(err error) {
	t.failOnce.Do(func() {
		t.mu.Lock()
		t.err = err
		for id, ch := range t.calls {
			delete(t.calls, id)
			close(ch)
		}
		t.mu.Unlock()
		close(t.done)
		_ = t.tcp.Close()
	})
}

// failure returns the poison cause.
func (t *transport) failure() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return errors.New("client: connection failed")
}

// register allocates a request ID and installs the caller's response channel.
func (t *transport) register(ch chan demuxed) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.calls[t.nextID] = ch
	return t.nextID
}

// unregister removes a call table entry, if still present.
func (t *transport) unregister(id uint64) {
	t.mu.Lock()
	delete(t.calls, id)
	t.mu.Unlock()
}

// abandon gives up on an in-flight request: removes its table entry (so a
// late response is dropped by the demux) and emits a best-effort Cancel
// frame telling the server to stop working on it.
func (t *transport) abandon(id uint64) {
	t.mu.Lock()
	_, pending := t.calls[id]
	delete(t.calls, id)
	t.mu.Unlock()
	if !pending {
		return // already answered or transport already failed
	}
	env, err := wire.NewEnvelope(wire.KindCancel, "", 0, 0, wire.CancelReq{ID: id})
	if err != nil {
		return
	}
	select {
	case t.writeq <- outFrame{env: env}:
		t.reg.Counter("client_cancel_frames_total").Inc()
	case <-t.done:
	default: // queue full: skip — the server just finishes the request
	}
}

// writeLoop is the single writer: it serializes all outgoing frames onto the
// socket and reports each frame's fate to its sender. A write error poisons
// the transport — the peer's read position is unknowable mid-frame.
func (t *transport) writeLoop() {
	for {
		select {
		case f := <-t.writeq:
			n, err := wire.WriteEnvelope(t.tcp, f.env)
			t.reg.Counter("client_tx_bytes_total").Add(int64(n))
			if f.res != nil {
				f.res <- writeResult{n, err}
			}
			if err != nil {
				t.fail(fmt.Errorf("client: write %s: %w", f.env.Kind, err))
				return
			}
		case <-t.done:
			return
		}
	}
}

// readLoop is the demux: it routes each response frame to the caller whose
// request ID it echoes. Frames for unknown IDs are responses to abandoned
// (canceled) requests and are dropped. A read error poisons the transport.
func (t *transport) readLoop() {
	for {
		env, n, err := wire.ReadFrame(t.tcp)
		if err != nil {
			t.fail(fmt.Errorf("client: read response: %w", err))
			return
		}
		t.reg.Counter("client_rx_bytes_total").Add(int64(n))
		t.mu.Lock()
		ch, ok := t.calls[env.ID]
		if ok {
			delete(t.calls, env.ID)
		}
		t.mu.Unlock()
		if !ok {
			t.reg.Counter("client_late_replies_total").Inc()
			continue
		}
		ch <- demuxed{env, n} // buffered; entry removal above makes this the only send
	}
}

// muxCall runs one request/response exchange on a multiplexed transport.
func (c *Conn) muxCall(ctx context.Context, t *transport, kind string, req interface{}) (*wire.Envelope, int, int, error) {
	var timeout time.Duration
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
		if timeout <= 0 {
			return nil, 0, 0, context.DeadlineExceeded
		}
	}
	env, err := wire.NewEnvelope(kind, c.tokenSnapshot(), 0, timeout, req)
	if err != nil {
		return nil, 0, 0, err
	}
	stampTrace(ctx, env)
	return c.muxExchange(ctx, t, env)
}

// muxExchange sends one pre-built envelope on a multiplexed transport and
// awaits the response echoing its ID. The envelope's ID is (re)stamped with
// a fresh request ID for this transport.
func (c *Conn) muxExchange(ctx context.Context, t *transport, env *wire.Envelope) (*wire.Envelope, int, int, error) {
	ch := make(chan demuxed, 1)
	id := t.register(ch)
	defer t.unregister(id)
	env.ID = id
	res := make(chan writeResult, 1)
	select {
	case t.writeq <- outFrame{env: env, res: res}:
	case <-t.done:
		return nil, 0, 0, t.failure()
	case <-ctx.Done():
		return nil, 0, 0, ctx.Err()
	}
	var up int
	select {
	case wr := <-res:
		if wr.err != nil {
			return nil, 0, 0, wr.err
		}
		up = wr.n
	case <-t.done:
		return nil, 0, 0, t.failure()
	}
	select {
	case d, ok := <-ch:
		if !ok {
			return nil, up, 0, t.failure()
		}
		return d.env, up, d.n, nil
	case <-ctx.Done():
		t.abandon(id)
		return nil, up, 0, ctx.Err()
	case <-t.done:
		// Teardown may race a response already delivered to ch.
		select {
		case d, ok := <-ch:
			if ok {
				return d.env, up, d.n, nil
			}
		default:
		}
		return nil, up, 0, t.failure()
	}
}

// lockstepCall runs one request/response exchange in v1 framing: the whole
// round trip holds the transport, exactly one request in flight. A context
// deadline is enforced via socket deadlines; any failure mid-exchange
// poisons the transport, because a partially written request or partially
// read response leaves the stream position undefined.
func (c *Conn) lockstepCall(ctx context.Context, t *transport, kind string, req interface{}) (*wire.Envelope, int, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	var timeout time.Duration
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
	}
	env, err := wire.NewEnvelope(kind, c.tokenSnapshot(), 0, timeout, req)
	if err != nil {
		return nil, 0, 0, err
	}
	stampTrace(ctx, env)
	return c.lockstepExchange(ctx, t, env)
}

// lockstepExchange runs one pre-built envelope through v1 framing: the whole
// round trip holds the transport. The envelope's ID is forced to zero (the
// v1 marker).
func (c *Conn) lockstepExchange(ctx context.Context, t *transport, env *wire.Envelope) (*wire.Envelope, int, int, error) {
	env.ID = 0
	t.lsMu.Lock()
	defer t.lsMu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		_ = t.tcp.SetDeadline(dl)
		defer func() { _ = t.tcp.SetDeadline(time.Time{}) }()
	}
	up, err := wire.WriteEnvelope(t.tcp, env)
	t.reg.Counter("client_tx_bytes_total").Add(int64(up))
	if err != nil {
		err = fmt.Errorf("client: write %s: %w", env.Kind, err)
		t.fail(err)
		return nil, 0, 0, err
	}
	renv, down, err := wire.ReadFrame(t.tcp)
	if err != nil {
		err = fmt.Errorf("client: %s response: %w", env.Kind, err)
		t.fail(err)
		return nil, up, 0, err
	}
	t.reg.Counter("client_rx_bytes_total").Add(int64(down))
	return renv, up, down, nil
}

// transient reports whether err is a transport-level failure worth a
// reconnect attempt — as opposed to a server-reported rejection, a caller
// cancellation, an explicit Close, or a protocol violation, none of which a
// fresh connection can fix.
func transient(err error) bool {
	var re *RemoteError
	switch {
	case errors.As(err, &re):
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, ErrClosed):
		return false
	case wire.IsMalformed(err):
		return false
	}
	return true
}

// roundTrip sends one request and awaits its response, accounting bytes to
// the given cost category. Idempotent calls that hit a transport error are
// retried on a fresh connection with capped exponential backoff.
func (c *Conn) roundTrip(ctx context.Context, cat device.Category, kind string, idempotent bool, req, resp interface{}) (err error) {
	// Join the caller's trace, or — when none — let the head sampler decide
	// whether this operation starts a client-originated one. A trace started
	// here is also finished here (the operation is its root); a caller-owned
	// trace is left for the caller to finish.
	if obs.TraceFromContext(ctx) == nil {
		var at *obs.ActiveTrace
		ctx, at = c.tracer.StartTrace(ctx)
		if at != nil {
			defer at.Finish()
		}
	}
	var sp *obs.Span
	ctx, sp = obs.StartSpan(ctx, c.reg, "op/"+kind)
	start := time.Now()
	defer func() {
		sp.SetError(err)
		sp.End()
		c.reg.Histogram(obs.L("client_request_seconds", "kind", kind)).Observe(time.Since(start).Seconds())
		if err != nil {
			c.reg.Counter(obs.L("client_request_errors_total", "kind", kind)).Inc()
		}
	}()
	backoff := reconnectBackoffMin
	for attempt := 0; ; attempt++ {
		var env *wire.Envelope
		var up, down int
		var t *transport
		t, err = c.transport()
		if err == nil {
			if t.v2 {
				env, up, down, err = c.muxCall(ctx, t, kind, req)
			} else {
				env, up, down, err = c.lockstepCall(ctx, t, kind, req)
			}
		}
		if err == nil {
			if c.meter != nil {
				c.meter.AddTransfer(cat, int64(up), int64(down))
			}
			if env.Kind == wire.KindError {
				var ack wire.Ack
				if derr := env.Decode(&ack); derr == nil && ack.Err != "" {
					return remoteError(ack.Err, ack.Code, ack.RetryAfterNanos)
				}
				return &RemoteError{Msg: "server rejected request"}
			}
			return env.Decode(resp)
		}
		if !idempotent || attempt >= c.retries || !transient(err) || ctx.Err() != nil {
			return err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > reconnectBackoffMax {
			backoff = reconnectBackoffMax
		}
	}
}

// CreateRepository asks the server to initialize a repository.
func (c *Conn) CreateRepository(ctx context.Context, repoID string, opts wire.RepoOptions) error {
	var ack wire.Ack
	if err := c.roundTrip(ctx, device.Network, wire.KindCreateRepo, false, wire.CreateRepoReq{RepoID: repoID, Opts: opts}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Train triggers cloud-side training and blocks until it completes (free for
// the client: the only cost is the request round trip, which is the point of
// MIE). On a multiplexed connection other requests proceed meanwhile; use
// TrainStart for a non-blocking handle.
func (c *Conn) Train(ctx context.Context, repoID string) error {
	var ack wire.Ack
	if err := c.roundTrip(ctx, device.Network, wire.KindTrain, false, wire.TrainReq{RepoID: repoID}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// TrainStart launches an asynchronous server-side training job and returns
// its status handle immediately. If a job is already running its handle is
// returned instead of starting another.
func (c *Conn) TrainStart(ctx context.Context, repoID string) (wire.TrainJobStatus, error) {
	var resp wire.TrainJobResp
	if err := c.roundTrip(ctx, device.Network, wire.KindTrainStart, false, wire.TrainReq{RepoID: repoID}, &resp); err != nil {
		return wire.TrainJobStatus{}, err
	}
	return trainJobResult(resp)
}

// TrainStatus polls a training job.
func (c *Conn) TrainStatus(ctx context.Context, repoID string, jobID uint64) (wire.TrainJobStatus, error) {
	var resp wire.TrainJobResp
	if err := c.roundTrip(ctx, device.Network, wire.KindTrainStatus, true, wire.TrainJobReq{RepoID: repoID, JobID: jobID}, &resp); err != nil {
		return wire.TrainJobStatus{}, err
	}
	return trainJobResult(resp)
}

// TrainWait blocks until a training job finishes or ctx expires. If the
// request deadline lapses server-side first, the job's still-running status
// is returned without error; callers poll again or extend the deadline.
func (c *Conn) TrainWait(ctx context.Context, repoID string, jobID uint64) (wire.TrainJobStatus, error) {
	var resp wire.TrainJobResp
	if err := c.roundTrip(ctx, device.Network, wire.KindTrainWait, true, wire.TrainJobReq{RepoID: repoID, JobID: jobID}, &resp); err != nil {
		return wire.TrainJobStatus{}, err
	}
	return trainJobResult(resp)
}

// Update uploads a prepared encrypted update.
func (c *Conn) Update(ctx context.Context, repoID string, up *core.Update) error {
	var ack wire.Ack
	if err := c.roundTrip(ctx, device.Network, wire.KindUpdate, false, wire.UpdateReq{RepoID: repoID, Update: *up}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Remove deletes an object from the repository.
func (c *Conn) Remove(ctx context.Context, repoID, objectID string) error {
	var ack wire.Ack
	if err := c.roundTrip(ctx, device.Network, wire.KindRemove, false, wire.RemoveReq{RepoID: repoID, ObjectID: objectID}, &ack); err != nil {
		return err
	}
	return ackErr(ack)
}

// Search runs a prepared multimodal query and returns ranked hits.
func (c *Conn) Search(ctx context.Context, repoID string, q *core.Query) ([]core.SearchHit, error) {
	var resp wire.SearchResp
	if err := c.roundTrip(ctx, device.Network, wire.KindSearch, true, wire.SearchReq{RepoID: repoID, Query: *q}, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp.Err, resp.Code, resp.RetryAfterNanos)
	}
	return resp.Hits, nil
}

// Get fetches one stored ciphertext and its owner.
func (c *Conn) Get(ctx context.Context, repoID, objectID string) (ciphertext []byte, owner string, err error) {
	var resp wire.GetResp
	if err := c.roundTrip(ctx, device.Network, wire.KindGet, true, wire.GetReq{RepoID: repoID, ObjectID: objectID}, &resp); err != nil {
		return nil, "", err
	}
	if resp.Err != "" {
		return nil, "", remoteError(resp.Err, resp.Code, resp.RetryAfterNanos)
	}
	return resp.Ciphertext, resp.Owner, nil
}

func ackErr(ack wire.Ack) error {
	if ack.Err != "" {
		return remoteError(ack.Err, ack.Code, ack.RetryAfterNanos)
	}
	return nil
}

func trainJobResult(resp wire.TrainJobResp) (wire.TrainJobStatus, error) {
	if resp.Err != "" {
		return wire.TrainJobStatus{}, remoteError(resp.Err, resp.Code, resp.RetryAfterNanos)
	}
	return resp.Job, nil
}

// stampTrace copies the caller's span context, if any, onto an outgoing
// envelope so the server joins the same trace.
func stampTrace(ctx context.Context, env *wire.Envelope) {
	if sc := obs.SpanContextFrom(ctx); sc.TraceID != 0 {
		env.TraceID = sc.TraceID
		env.SpanID = sc.SpanID
		env.TraceSampled = sc.Sampled
	}
}

// FetchTrace retrieves the server-side half of a completed trace by id —
// how mie-client -trace shows the cloud's span tree for the request it just
// made. Call it with a fresh (untraced) context so the fetch itself does not
// produce another trace under the same id.
func (c *Conn) FetchTrace(ctx context.Context, traceID uint64) (*obs.Trace, error) {
	var resp wire.TraceResp
	if err := c.roundTrip(ctx, device.Network, wire.KindTraceGet, true, wire.TraceGetReq{TraceID: traceID}, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	tr := &obs.Trace{
		TraceID:       resp.TraceID,
		Root:          resp.Root,
		StartUnixNano: resp.StartUnixNano,
		DurationNanos: resp.DurationNanos,
		Reason:        resp.Reason,
	}
	for _, s := range resp.Spans {
		tr.Spans = append(tr.Spans, obs.SpanRecord{
			SpanID:        s.SpanID,
			ParentID:      s.ParentID,
			Name:          s.Name,
			StartUnixNano: s.StartUnixNano,
			DurationNanos: s.DurationNanos,
			Err:           s.Err,
		})
	}
	return tr, nil
}
