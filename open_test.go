package mie

// Tests for the context-first Open API: the ErrRepositoryExists sentinel,
// options-mismatch detection on embedded reuse, and asynchronous training.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(smallClientConfig(key))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenLocalCreateConflict(t *testing.T) {
	ctx := context.Background()
	svc := memService(t)
	c := newTestClient(t)
	r1, err := Open(ctx, Options{Service: svc, Client: c, RepoID: "r", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r1.Close() }()

	// Re-creating with identical options is harmless: no error.
	r2, err := Open(ctx, Options{Service: svc, Client: c, RepoID: "r", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatalf("identical re-create: %v", err)
	}
	defer func() { _ = r2.Close() }()

	// Re-creating with different options reports the sentinel but still
	// hands back a working handle to the existing repository.
	other := smallRepoOptions()
	other.Vocab.Words = 99
	r3, err := Open(ctx, Options{Service: svc, Client: c, RepoID: "r", Create: true, Repo: other})
	if !errors.Is(err, ErrRepositoryExists) {
		t.Fatalf("mismatched re-create: err = %v, want ErrRepositoryExists", err)
	}
	if r3 == nil {
		t.Fatal("mismatched re-create returned no handle")
	}
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Add(ctx, &Object{ID: "x", Owner: "me", Text: "still usable"}, dk); err != nil {
		t.Fatalf("handle returned with sentinel is unusable: %v", err)
	}
	_ = r3.Close()

	// Opening without Create a repository that does not exist fails.
	if _, err := Open(ctx, Options{Service: svc, Client: c, RepoID: "nope"}); err == nil {
		t.Error("open of missing repository succeeded")
	}
}

func TestOpenRemoteCreateConflictSentinel(t *testing.T) {
	ctx := context.Background()
	svc := memService(t)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c := newTestClient(t)
	r1, err := Open(ctx, Options{Addr: srv.Addr(), Client: c, RepoID: "dup", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r1.Close() })

	r2, err := Open(ctx, Options{Addr: srv.Addr(), Client: c, RepoID: "dup", Create: true, Repo: smallRepoOptions()})
	if !errors.Is(err, ErrRepositoryExists) {
		t.Fatalf("remote re-create: err = %v, want ErrRepositoryExists", err)
	}
	if r2 == nil {
		t.Fatal("remote re-create returned no handle")
	}
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Add(ctx, &Object{ID: "x", Owner: "me", Text: "usable"}, dk); err != nil {
		t.Fatalf("handle returned with sentinel is unusable: %v", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

func trainAsyncExercise(t *testing.T, ctx context.Context, repo Repository) {
	t.Helper()
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range []string{"alpha document one", "beta document two", "gamma note three"} {
		if err := repo.Add(ctx, &Object{ID: string(rune('a' + i)), Owner: "me", Text: text}, dk); err != nil {
			t.Fatal(err)
		}
	}
	job, err := repo.TrainAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() == 0 {
		t.Error("job ID = 0")
	}
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != TrainDone {
		t.Fatalf("job state = %v (err %q), want TrainDone", st.State, st.Err)
	}
	if st.Epoch == 0 {
		t.Error("trained epoch = 0, want >= 1")
	}
	// Status after completion still reports the finished job.
	st2, err := job.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != TrainDone || st2.JobID != job.ID() {
		t.Errorf("status after done = %+v", st2)
	}
	hits, err := repo.Search(ctx, &Object{ID: "q", Text: "beta"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ObjectID != "b" {
		t.Errorf("hits = %+v", hits)
	}
}

func TestTrainAsyncLocal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	repo, err := Open(ctx, Options{Client: newTestClient(t), RepoID: "r", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = repo.Close() }()
	trainAsyncExercise(t, ctx, repo)
}

func TestTrainAsyncRemote(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	svc := memService(t)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	repo, err := Open(ctx, Options{Addr: srv.Addr(), Client: newTestClient(t), RepoID: "r", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = repo.Close() }()
	trainAsyncExercise(t, ctx, repo)
}

func TestOpenValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Open(ctx, Options{RepoID: "r"}); err == nil {
		t.Error("Open without Client succeeded")
	}
	if _, err := Open(ctx, Options{Client: newTestClient(t)}); err == nil {
		t.Error("Open without RepoID succeeded")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Open(canceled, Options{Client: newTestClient(t), RepoID: "r", Create: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("Open with canceled ctx: err = %v", err)
	}
}
