// Command mie-client is a small CLI for driving an MIE server: generate and
// store repository keys, create repositories, add/search/fetch/remove
// multimodal objects. It demonstrates the full trust model: all encryption
// and encoding happens here; the server only ever sees ciphertexts, tokens
// and encodings.
//
// Usage:
//
//	mie-client -server host:7709 -key repo.key keygen
//	mie-client -server host:7709 -key repo.key create photos
//	mie-client -server host:7709 -key repo.key add photos obj1 notes.txt [photo.pgm]
//	mie-client -server host:7709 -key repo.key train photos
//	mie-client -server host:7709 -key repo.key search photos "beach sunset"
//	mie-client -server host:7709 -key repo.key -image query.pgm search photos "beach"
//	mie-client -server host:7709 -key repo.key get photos obj1
//	mie-client -server host:7709 -key repo.key remove photos obj1
//	mie-client -server host:7709 -key repo.key -trace search photos "beach"
//
// -trace forces a distributed trace for the command and prints the merged
// span tree — the client-side operation spans plus the server-side dispatch,
// engine and WAL spans fetched back over the wire — so one flag shows where
// a request's time went end to end.
//
// For simplicity the CLI derives per-object data keys from the repository
// key; applications wanting fine-grained access control supply their own.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mie"
	"mie/internal/crypto"
	"mie/internal/imaging"
	"mie/internal/obs"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:7709", "MIE server address")
	keyFile := flag.String("key", "repo.key", "repository key file")
	k := flag.Int("k", 10, "number of search results")
	timeout := flag.Duration("timeout", 0, "per-command deadline, carried to the server over the wire (0 = none)")
	imagePath := flag.String("image", "", "PGM image for query-by-example searches")
	verbose := flag.Bool("v", false, "log per-operation client-side timings to stderr")
	trace := flag.Bool("trace", false, "trace the command end to end and print the merged client+server span tree to stderr")
	flag.Parse()
	logger := obs.Nop()
	if *verbose {
		logger = obs.NewLogger(os.Stderr, obs.LevelDebug)
	}
	start := time.Now()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	err := run(ctx, *serverAddr, *keyFile, *k, *imagePath, *trace, flag.Args())
	cmd := ""
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	logger.Info("command finished", "cmd", cmd, "elapsed", time.Since(start), "ok", err == nil)
	if *verbose {
		// The client-side half of the paper's latency split: prepare/encode
		// phase spans plus per-kind network round-trip histograms.
		fmt.Fprintln(os.Stderr, "--- client metrics ---")
		_ = obs.Default().WriteMetrics(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mie-client:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, serverAddr, keyFile string, k int, imagePath string, trace bool, args []string) error {
	if len(args) == 0 {
		return errors.New("missing command (keygen|create|add|train|search|get|remove)")
	}
	cmd, args := args[0], args[1:]

	if cmd == "keygen" {
		key, err := mie.NewRepositoryKey()
		if err != nil {
			return err
		}
		if err := os.WriteFile(keyFile, []byte(hex.EncodeToString(key.Master[:])), 0o600); err != nil {
			return fmt.Errorf("write key file: %w", err)
		}
		fmt.Printf("repository key written to %s — share it with authorized users\n", keyFile)
		return nil
	}

	key, err := loadKey(keyFile)
	if err != nil {
		return err
	}
	client, err := mie.NewClient(mie.ClientConfig{Key: key})
	if err != nil {
		return err
	}
	if len(args) == 0 {
		return fmt.Errorf("%s: missing repository name", cmd)
	}
	repoID, args := args[0], args[1:]

	// -trace: force a client-originated trace so the whole command — Open's
	// RPCs included — lands in one span tree, and mark where the command
	// starts with a root span named after it.
	var at *obs.ActiveTrace
	var rootSp *obs.Span
	if trace {
		ctx, at = obs.DefaultTracer().ForceTrace(ctx)
		ctx, rootSp = obs.StartSpan(ctx, obs.Default(), "cli/"+cmd)
	}

	repo, err := mie.Open(ctx, mie.Options{
		Addr:   serverAddr,
		Client: client,
		RepoID: repoID,
		Create: cmd == "create",
	})
	if err != nil {
		return err
	}
	defer func() { _ = repo.Close() }()

	dataKey := crypto.DeriveKey(key.Master, "cli-data-key")
	err = runCommand(ctx, repo, cmd, repoID, args, k, imagePath, dataKey)
	if at != nil {
		rootSp.SetError(err)
		rootSp.End()
		printTrace(repo, at.Finish())
	}
	return err
}

func runCommand(ctx context.Context, repo mie.Repository, cmd, repoID string, args []string, k int, imagePath string, dataKey mie.DataKey) error {
	switch cmd {
	case "create":
		fmt.Printf("repository %q created\n", repoID)
		return nil
	case "add":
		if len(args) < 2 {
			return errors.New("add: need <object-id> <text-file> [image.pgm]")
		}
		raw, err := os.ReadFile(args[1])
		if err != nil {
			return fmt.Errorf("read %s: %w", args[1], err)
		}
		obj := &mie.Object{ID: args[0], Owner: os.Getenv("USER"), Text: string(raw)}
		if len(args) >= 3 {
			if obj.Image, err = loadPGM(args[2]); err != nil {
				return err
			}
		}
		if err := repo.Add(ctx, obj, dataKey); err != nil {
			return err
		}
		fmt.Printf("added %q (%d bytes of text%s)\n", args[0], len(raw), imageNote(obj))
		return nil
	case "train":
		job, err := repo.TrainAsync(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("training job %d running in the cloud...\n", job.ID())
		st, err := job.Wait(ctx)
		if err != nil {
			return err
		}
		if st.State == mie.TrainFailed {
			return fmt.Errorf("training failed: %s", st.Err)
		}
		fmt.Printf("training + indexing completed in the cloud (epoch %d)\n", st.Epoch)
		return nil
	case "search":
		if len(args) == 0 && imagePath == "" {
			return errors.New("search: need query text and/or -image")
		}
		query := &mie.Object{ID: "query", Text: strings.Join(args, " ")}
		if imagePath != "" {
			var err error
			if query.Image, err = loadPGM(imagePath); err != nil {
				return err
			}
		}
		hits, err := repo.Search(ctx, query, k)
		if err != nil {
			return err
		}
		if len(hits) == 0 {
			fmt.Println("no results")
			return nil
		}
		for i, h := range hits {
			fmt.Printf("%2d. %-24s score=%.4f owner=%s\n", i+1, h.ObjectID, h.Score, h.Owner)
		}
		return nil
	case "get":
		if len(args) < 1 {
			return errors.New("get: need <object-id>")
		}
		ct, owner, err := repo.Get(ctx, args[0])
		if err != nil {
			return err
		}
		obj, err := mie.DecryptObject(ct, dataKey)
		if err != nil {
			return fmt.Errorf("decrypt (wrong data key?): %w", err)
		}
		fmt.Printf("id=%s owner=%s\n---\n%s\n", obj.ID, owner, obj.Text)
		return nil
	case "remove":
		if len(args) < 1 {
			return errors.New("remove: need <object-id>")
		}
		if err := repo.Remove(ctx, args[0]); err != nil {
			return err
		}
		fmt.Printf("removed %q\n", args[0])
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printTrace renders the command's merged span tree to stderr: the local
// client-side fragment plus — when the repository is remote — the server-side
// fragment fetched back by trace id. The server keeps traces asynchronously
// after answering, so the fetch retries briefly.
func printTrace(repo mie.Repository, local *mie.Trace) {
	if local == nil {
		return
	}
	traces := []*mie.Trace{local}
	if tf, ok := repo.(mie.TraceFetcher); ok {
		// Fresh context: fetching the trace must not extend the trace.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for attempt := 0; attempt < 5; attempt++ {
			remote, err := tf.FetchTrace(ctx, local.TraceID)
			if err == nil {
				traces = append(traces, remote)
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	fmt.Fprintf(os.Stderr, "--- trace %s ---\n%s", obs.FormatTraceID(local.TraceID), obs.RenderTraceTree(traces...))
}

func loadPGM(path string) (*mie.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open image: %w", err)
	}
	defer f.Close()
	img, err := imaging.ReadPGM(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return img, nil
}

func imageNote(obj *mie.Object) string {
	if obj.Image == nil {
		return ""
	}
	return fmt.Sprintf(" + %dx%d image", obj.Image.W, obj.Image.H)
}

func loadKey(path string) (mie.RepositoryKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return mie.RepositoryKey{}, fmt.Errorf("read key file (run keygen first?): %w", err)
	}
	b, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return mie.RepositoryKey{}, fmt.Errorf("decode key file: %w", err)
	}
	k, err := crypto.KeyFromBytes(b)
	if err != nil {
		return mie.RepositoryKey{}, err
	}
	return mie.RepositoryKey{Master: k}, nil
}
