// Command mie-bench regenerates every table and figure of the paper's
// evaluation section (§VII) and prints them in the paper's layout.
//
// Usage:
//
//	mie-bench [-scale quick|default|paper] [-experiment all|table1|table2|fig2|fig3|fig4|fig5|fig6|table3|attack|ablations]
//	          [-obs-out BENCH_obs.json] [-persistence [-persistence-out BENCH_persistence.json]]
//	          [-incremental [-incremental-out BENCH_incremental.json]] [-trace-overhead]
//	          [-ann [-ann-out BENCH_ann.json]] [-tenancy [-tenancy-out BENCH_tenancy.json]]
//	          [-cluster [-cluster-out BENCH_cluster.json]]
//
// The default scale runs the whole suite in minutes on a laptop by shrinking
// workloads ~10x; -scale paper restores the published sizes (expect the
// Hom-MSSE runs to take a very long time — on the paper's tablet they
// drained the battery).
//
// -ann runs the approximate-dense-search benchmark: a recall@10-vs-speedup
// sweep of the multi-probe LSH candidate index over (tables, bits, probes)
// against the exact popcount scan, plus the mAP delta of routing the fused
// Holidays pipeline through the candidate path (target: >=5x at recall@10
// >= 0.9, mAP within 2 points).
//
// -tenancy runs the multi-tenancy benchmark: TenancyRepos small
// repositories hosted on one lazily-activating service whose memory budget
// covers only a fraction of the fleet, churned through cold activation and
// LRU eviction (reporting activation latency percentiles, resident
// accounting vs the budget, and acked-write durability), then a hot-tenant
// fairness comparison with per-tenant in-flight admission off and on.
//
// -trace-overhead measures the cost of the request-tracing subsystem: the
// same TCP search workload untraced and head-sampled at 0%, 1% and 100%,
// reported as p95 overhead versus the untraced baseline and folded into the
// -obs-out JSON (target: <5% p95 overhead at the default 1% sampling).
//
// Every run also dumps the process metrics registry (phase latency
// histograms with quantiles, request counters, repository gauges — see
// internal/obs) as machine-readable JSON to -obs-out, so successive PRs have
// a perf trajectory to diff instead of eyeballing report text. Set
// -obs-out "" to skip the dump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mie/internal/device"
	"mie/internal/experiments"
	"mie/internal/obs"
)

func main() {
	scale := flag.String("scale", "default", "workload scale: quick, default, paper-sample, or paper")
	experiment := flag.String("experiment", "all", "which experiment to run: all, table1, table2, fig2, fig3, fig4, fig5, fig6, table3, attack, ablations, none")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "write the metrics registry snapshot as JSON to this file (empty = skip)")
	parallel := flag.Int("parallel", 0, "run the concurrent-search benchmark with up to N search clients (0 = skip)")
	singleConn := flag.Bool("single-conn", false, "with -parallel, also compare wire transports over TCP: v1 lockstep and v2 mux on one shared connection vs one v2 connection per client")
	concOut := flag.String("concurrency-out", "BENCH_concurrency.json", "write the concurrent-search report as JSON to this file")
	persistence := flag.Bool("persistence", false, "run the durability benchmark: WAL append/fsync throughput per sync policy, snapshot and recovery cost")
	persistOut := flag.String("persistence-out", "BENCH_persistence.json", "write the durability report as JSON to this file")
	incremental := flag.Bool("incremental", false, "run the incremental-training benchmark: retrain cost after churn vs a full rebuild, with mAP parity")
	incrementalOut := flag.String("incremental-out", "BENCH_incremental.json", "write the incremental-training report as JSON to this file")
	annBench := flag.Bool("ann", false, "run the approximate-dense-search benchmark: multi-probe LSH recall/speedup sweep vs the exact scan, plus fused-pipeline mAP parity")
	annOut := flag.String("ann-out", "BENCH_ann.json", "write the ANN report as JSON to this file")
	tenancy := flag.Bool("tenancy", false, "run the multi-tenancy benchmark: lazy-activation churn over a large repository fleet under a memory budget, plus hot-tenant fairness")
	tenancyOut := flag.String("tenancy-out", "BENCH_tenancy.json", "write the tenancy report as JSON to this file")
	clusterBench := flag.Bool("cluster", false, "run the replication benchmark: read scale-out across cluster sizes behind the consistent-hash router, replication lag, and zero-loss failover across a leader kill")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "write the cluster report as JSON to this file")
	traceOverhead := flag.Bool("trace-overhead", false, "measure request-tracing overhead at 0%, 1% and 100% sampling vs an untraced baseline")
	flag.Parse()
	if err := run(*scale, *experiment); err != nil {
		fmt.Fprintln(os.Stderr, "mie-bench:", err)
		os.Exit(1)
	}
	if *parallel > 0 {
		if err := runConcurrency(*scale, *parallel, *singleConn, *concOut); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	if *persistence {
		if err := runPersistence(*scale, *persistOut); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	if *incremental {
		if err := runIncremental(*scale, *incrementalOut); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	if *annBench {
		if err := runANN(*scale, *annOut); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	if *tenancy {
		if err := runTenancy(*scale, *tenancyOut); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	if *clusterBench {
		if err := runCluster(*scale, *clusterOut); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	var traceReport *experiments.TraceOverheadReport
	if *traceOverhead {
		var err error
		if traceReport, err = runTraceOverhead(*scale); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
	if *obsOut != "" {
		if err := writeObsSnapshot(*obsOut, *scale, *experiment, traceReport); err != nil {
			fmt.Fprintln(os.Stderr, "mie-bench:", err)
			os.Exit(1)
		}
	}
}

// runConcurrency drives the concurrent-search benchmark at the canonical
// client levels {1, 4, 16} capped at n (n itself is always included), prints
// the report and writes it as JSON.
func runConcurrency(scale string, n int, singleConn bool, outPath string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	var levels []int
	for _, l := range []int{1, 4, 16} {
		if l <= n {
			levels = append(levels, l)
		}
	}
	if len(levels) == 0 || levels[len(levels)-1] != n {
		levels = append(levels, n)
	}
	report, err := experiments.ConcurrencyExperiment(cfg, levels)
	if err != nil {
		return fmt.Errorf("concurrency: %w", err)
	}
	if singleConn {
		wire, err := experiments.WireConcurrencyExperiment(cfg, levels)
		if err != nil {
			return fmt.Errorf("wire concurrency: %w", err)
		}
		report.Wire = wire
	}
	experiments.WriteConcurrencyReport(os.Stdout, report)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal concurrency report: %w", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write concurrency report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "concurrency report written to %s\n", outPath)
	return nil
}

// runPersistence measures the durability subsystem (WAL append throughput
// per fsync policy, snapshot and recovery cost), prints the report and
// writes it as JSON.
func runPersistence(scale, outPath string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mie-persist-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	report, err := experiments.PersistenceExperiment(cfg, dir)
	if err != nil {
		return fmt.Errorf("persistence: %w", err)
	}
	experiments.WritePersistenceReport(os.Stdout, report)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal persistence report: %w", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write persistence report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "persistence report written to %s\n", outPath)
	return nil
}

// runIncremental measures retrain cost after a ~10% churn — incremental
// train over the segmented index vs the legacy full rebuild — prints the
// report and writes it as JSON.
func runIncremental(scale, outPath string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	report, err := experiments.IncrementalExperiment(cfg)
	if err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	experiments.WriteIncrementalReport(os.Stdout, report)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal incremental report: %w", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write incremental report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "incremental report written to %s\n", outPath)
	return nil
}

// runANN measures the approximate dense-search path — candidate recall and
// per-query speedup across the (tables, bits, probes) sweep, plus the fused
// pipeline's mAP delta — prints the report and writes it as JSON.
func runANN(scale, outPath string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	report, err := experiments.ANNExperiment(cfg)
	if err != nil {
		return fmt.Errorf("ann: %w", err)
	}
	experiments.WriteANNReport(os.Stdout, report)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal ann report: %w", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write ann report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ann report written to %s\n", outPath)
	return nil
}

// runTenancy measures the repository-lifecycle subsystem — cold-activation
// latency and resident accounting while a large lazily-activated fleet
// churns under a memory budget, acked-write durability through eviction,
// and light-tenant tail latency with admission control off and on — prints
// the report and writes it as JSON.
func runTenancy(scale, outPath string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mie-tenancy-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	report, err := experiments.TenancyExperiment(cfg, dir)
	if err != nil {
		return fmt.Errorf("tenancy: %w", err)
	}
	experiments.WriteTenancyReport(os.Stdout, report)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal tenancy report: %w", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write tenancy report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "tenancy report written to %s\n", outPath)
	return nil
}

// runCluster drives the replication benchmark — in-process multi-node
// clusters behind the consistent-hash router: read scaling at each size,
// replication lag, and the leader-kill failover ledger — prints the report
// and writes it as JSON.
func runCluster(scale, outPath string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mie-cluster-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	report, err := experiments.ClusterExperiment(cfg, dir)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	experiments.WriteClusterReport(os.Stdout, report)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal cluster report: %w", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write cluster report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "cluster report written to %s\n", outPath)
	return nil
}

// runTraceOverhead measures the tracing subsystem's latency cost and prints
// the comparison; the report also rides along in BENCH_obs.json.
func runTraceOverhead(scale string) (*experiments.TraceOverheadReport, error) {
	cfg, err := configFor(scale)
	if err != nil {
		return nil, err
	}
	report, err := experiments.TraceOverheadExperiment(cfg, 4, 150)
	if err != nil {
		return nil, fmt.Errorf("trace overhead: %w", err)
	}
	experiments.WriteTraceReport(os.Stdout, report)
	return report, nil
}

// obsReport is the BENCH_obs.json document: run parameters plus the full
// registry snapshot accumulated while the experiments exercised the engine.
type obsReport struct {
	Scale      string       `json:"scale"`
	Experiment string       `json:"experiment"`
	Metrics    obs.Snapshot `json:"metrics"`
	// TraceOverhead is present when the run included -trace-overhead.
	TraceOverhead *experiments.TraceOverheadReport `json:"trace_overhead,omitempty"`
}

func writeObsSnapshot(path, scale, experiment string, traceReport *experiments.TraceOverheadReport) error {
	report := obsReport{Scale: scale, Experiment: experiment, Metrics: obs.Default().Snapshot(), TraceOverhead: traceReport}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal obs snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write obs snapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", path)
	return nil
}

// configFor maps a -scale value to its experiment configuration.
func configFor(scale string) (experiments.Config, error) {
	switch scale {
	case "quick":
		return experiments.Quick(), nil
	case "default":
		return experiments.Default(), nil
	case "paper":
		return experiments.PaperScale(), nil
	case "paper-sample":
		return experiments.PaperSample(), nil
	default:
		return experiments.Config{}, fmt.Errorf("unknown scale %q", scale)
	}
}

func run(scale, experiment string) error {
	cfg, err := configFor(scale)
	if err != nil {
		return err
	}
	if experiment == "none" {
		return nil // e.g. -parallel alone
	}
	want := func(name string) bool {
		return experiment == "all" || strings.EqualFold(experiment, name)
	}
	ran := false
	out := os.Stdout

	if want("table1") {
		ran = true
		scaling, err := experiments.Table1Empirical(cfg)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		experiments.WriteTable1Report(out, experiments.Table1Static(), scaling)
		fmt.Fprintln(out)
	}
	if want("table2") {
		ran = true
		rows, err := experiments.Table2(cfg.Seed)
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		experiments.WriteTable2Report(out, rows)
		fmt.Fprintln(out)
	}
	var mobileRows []experiments.UpdateRow
	if want("fig2") || want("fig6") {
		var err error
		if mobileRows, err = experiments.UpdateExperiment(device.Mobile, cfg); err != nil {
			return fmt.Errorf("fig2/fig6: %w", err)
		}
	}
	if want("fig2") {
		ran = true
		experiments.WriteUpdateReport(out, "Figure 2: update performance, mobile device", mobileRows)
		fmt.Fprintln(out)
	}
	if want("fig3") {
		ran = true
		rows, err := experiments.UpdateExperiment(device.Desktop, cfg)
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		experiments.WriteUpdateReport(out, "Figure 3: update performance, desktop device", rows)
		fmt.Fprintln(out)
	}
	if want("fig4") {
		ran = true
		rows, err := experiments.MultiUserExperiment(cfg)
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		experiments.WriteMultiUserReport(out, rows)
		fmt.Fprintln(out)
	}
	if want("fig5") {
		ran = true
		rows, err := experiments.SearchExperiment(cfg)
		if err != nil {
			return fmt.Errorf("fig5: %w", err)
		}
		experiments.WriteSearchReport(out, rows)
		fmt.Fprintln(out)
	}
	if want("fig6") {
		ran = true
		experiments.WriteEnergyReport(out, mobileRows, device.Mobile.BatteryCapacityMAh)
		fmt.Fprintln(out)
	}
	if want("table3") {
		ran = true
		rows, err := experiments.PrecisionExperiment(cfg)
		if err != nil {
			return fmt.Errorf("table3: %w", err)
		}
		experiments.WritePrecisionReport(out, rows)
		fmt.Fprintln(out)
	}
	if want("attack") {
		ran = true
		rows, err := experiments.AttackExperiment(cfg)
		if err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		experiments.WriteAttackReport(out, rows)
		fmt.Fprintln(out)
	}
	if want("ablations") {
		ran = true
		if rows, err := experiments.AblationEncodingSize(cfg); err != nil {
			return fmt.Errorf("ablation encoding-size: %w", err)
		} else {
			experiments.WriteAblationReport(out, "Dense-DPE encoding size M (mAP)", rows)
		}
		if rows, err := experiments.AblationThreshold(cfg); err != nil {
			return fmt.Errorf("ablation threshold: %w", err)
		} else {
			experiments.WriteAblationReport(out, "Dense-DPE threshold t (mAP; the security/utility dial)", rows)
		}
		if rows, err := experiments.AblationTrainingSpace(cfg); err != nil {
			return fmt.Errorf("ablation training-space: %w", err)
		} else {
			experiments.WriteAblationReport(out, "training space: plaintext-Euclidean vs encoded-Hamming (mAP)", rows)
		}
		dir, err := os.MkdirTemp("", "mie-champ-*")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(dir) }()
		if rows, err := experiments.AblationChampionSize(cfg, dir); err != nil {
			return fmt.Errorf("ablation champion-size: %w", err)
		} else {
			experiments.WriteAblationReport(out, "champion list size R (P@10 vs unbounded index)", rows)
		}
		if rows, err := experiments.AblationFusion(cfg); err != nil {
			return fmt.Errorf("ablation fusion: %w", err)
		} else {
			experiments.WriteAblationReport(out, "rank fusion method (AP on topic query)", rows)
		}
		fmt.Fprintln(out)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
