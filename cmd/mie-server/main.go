// Command mie-server runs the untrusted MIE cloud component: it hosts
// repositories, stores ciphertexts and DPE encodings, trains codebooks and
// answers encrypted multimodal queries over the wire protocol.
//
// Usage:
//
//	mie-server [-addr :7709] [-data-dir /var/lib/mie] [-snapshot-every 5m]
//	           [-wal-sync always] [-lazy] [-memory-budget 4GiB]
//	           [-quota-objects N] [-quota-bytes N] [-quota-inflight N]
//	           [-debug-addr 127.0.0.1:7710] [-log-level info]
//	           [-trace-sample 0.01] [-slow-ms 250]
//	           [-role leader|follower] [-peers leader:7709]
//	           [-router node-0=host0:7709,node-1=host1:7709]
//
// Replication (requires -data-dir): -role leader streams every acknowledged
// WAL record to subscribing followers; -role follower replicates from the
// leader named by -peers, serves Search/Get from its local replica and
// forwards mutations and training to the leader. -router turns the process
// into the stateless routing tier instead of a node: it serves the wire
// protocol on -addr, places repositories on the listed nodes by consistent
// hashing (the first entry is the leader), health-checks each node and
// fails reads over to caught-up replicas.
//
// With -data-dir the server is crash-safe: every acknowledged Update/Remove
// is appended to a per-repository write-ahead log before the client sees
// success, snapshots are written on shutdown and every -snapshot-every
// interval (folding the log back in and rotating it empty), and startup
// restores each repository from its snapshot plus a replay of its log.
// -wal-sync picks the log's fsync policy: "always" (default — acknowledged
// writes survive power loss), "interval" (fsync on a timer; a crash may
// lose the last interval's writes) or "never" (fastest; the OS decides).
//
// Multi-tenancy (requires -data-dir): -lazy starts every recovered
// repository cold — its snapshot and WAL stay on disk until the first
// request activates it — so a server can catalog far more repositories
// than fit in memory. -memory-budget (bytes; k/M/G/Ki/Mi/Gi suffixes
// accepted) caps the approximate resident footprint of active
// repositories; least-recently-used idle repositories are evicted back to
// disk when the budget is exceeded. -quota-objects/-quota-bytes bound any
// single tenant's resident footprint and -quota-inflight its concurrent
// requests (0 = unlimited); over-quota requests are rejected with a typed
// wire error carrying a retry-after hint, keyed on the User field of the
// bearer token (tokenless traffic pools under "anonymous").
// With -debug-addr it additionally serves the observability endpoint:
// /metrics (Prometheus text exposition), /metrics.json, /debug/traces
// (recently kept request traces), /debug/leakage (per-repository leakage
// profiles), /debug/vars (expvar) and /debug/pprof — bind it to a trusted
// interface only. -trace-sample sets the head-sampling probability for
// request traces; -slow-ms additionally keeps a trace for any request slower
// than the threshold regardless of sampling (0 disables tail capture). The server holds no
// key material: everything it stores and computes on is encrypted or encoded
// client-side. Point mie-client (or any program built on the public mie
// package) at its address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/replica"
	"mie/internal/router"
	"mie/internal/server"
	"mie/internal/wal"
)

// tenancyFlags carries the multi-tenant lifecycle knobs from flag parsing
// to run.
type tenancyFlags struct {
	lazy         bool
	memoryBudget string
	quotas       core.Quotas
}

func main() {
	addr := flag.String("addr", ":7709", "listen address")
	dataDir := flag.String("data-dir", "", "data directory for durable repositories: snapshots + write-ahead logs (empty = in-memory only)")
	snapEvery := flag.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval; each snapshot rotates the WAL (with -data-dir)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval or never")
	debugAddr := flag.String("debug-addr", "", "observability HTTP address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	traceSample := flag.Float64("trace-sample", 0.01, "head-sampling probability for request traces in [0,1]")
	slowMS := flag.Int("slow-ms", 250, "keep a trace and log a warning for requests slower than this many milliseconds (0 = disabled)")
	role := flag.String("role", "", `replication role: "" (standalone), "leader" (stream acknowledged WAL records to followers) or "follower" (replicate from -peers, forward mutations to it; requires -data-dir)`)
	peers := flag.String("peers", "", "leader address a follower replicates from and forwards mutations to (with -role follower)")
	routerSpec := flag.String("router", "", "run as the routing tier instead of a node: comma-separated name=addr members, first entry is the leader; serves on -addr")
	var ten tenancyFlags
	flag.BoolVar(&ten.lazy, "lazy", false, "activate repositories on first use instead of at startup (requires -data-dir)")
	flag.StringVar(&ten.memoryBudget, "memory-budget", "", "approximate resident-memory budget for active repositories, e.g. 512MiB or 4GiB; idle repositories are evicted to disk above it (requires -data-dir; empty = unlimited)")
	flag.Int64Var(&ten.quotas.MaxObjects, "quota-objects", 0, "per-tenant cap on resident objects (0 = unlimited)")
	flag.Int64Var(&ten.quotas.MaxBytes, "quota-bytes", 0, "per-tenant cap on approximate resident bytes (0 = unlimited)")
	flag.IntVar(&ten.quotas.MaxInflight, "quota-inflight", 0, "per-tenant cap on concurrent in-flight requests (0 = unlimited)")
	flag.Parse()
	if *routerSpec != "" {
		if err := runRouter(*addr, *routerSpec, *logLevel); err != nil {
			fmt.Fprintln(os.Stderr, "mie-server:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *dataDir, *snapEvery, *walSync, *debugAddr, *logLevel, *traceSample, *slowMS, *role, *peers, ten); err != nil {
		fmt.Fprintln(os.Stderr, "mie-server:", err)
		os.Exit(1)
	}
}

// runRouter serves the routing tier until interrupted.
func runRouter(addr, spec, logLevel string) error {
	level, err := obs.ParseLevel(logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)
	cfg := router.Config{Addr: addr, Logger: logger}
	for _, part := range strings.Split(spec, ",") {
		name, nodeAddr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("-router: member %q is not name=addr", part)
		}
		cfg.Nodes = append(cfg.Nodes, router.Node{Name: name, Addr: nodeAddr})
	}
	rt, err := router.Start(cfg)
	if err != nil {
		return err
	}
	logger.Info("routing", "addr", rt.Addr(), "nodes", len(cfg.Nodes), "leader", cfg.Nodes[0].Name)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	return rt.Close()
}

// parseBytes parses a human byte size: a plain integer, or one with a
// k/M/G/T (decimal) or Ki/Mi/Gi/Ti (binary) suffix, optionally ending in B.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimSuffix(t, "B")
	t = strings.TrimSuffix(t, "b")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "Ki"), strings.HasSuffix(t, "ki"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(t, "Mi"), strings.HasSuffix(t, "mi"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(t, "Gi"), strings.HasSuffix(t, "gi"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(t, "Ti"), strings.HasSuffix(t, "ti"):
		mult, t = 1<<40, t[:len(t)-2]
	case strings.HasSuffix(t, "k"), strings.HasSuffix(t, "K"):
		mult, t = 1e3, t[:len(t)-1]
	case strings.HasSuffix(t, "M"), strings.HasSuffix(t, "m"):
		mult, t = 1e6, t[:len(t)-1]
	case strings.HasSuffix(t, "G"), strings.HasSuffix(t, "g"):
		mult, t = 1e9, t[:len(t)-1]
	case strings.HasSuffix(t, "T"):
		mult, t = 1e12, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}

func run(addr, dataDir string, snapEvery time.Duration, walSync, debugAddr, logLevel string, traceSample float64, slowMS int, role, peers string, ten tenancyFlags) error {
	level, err := obs.ParseLevel(logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)

	tracer := obs.DefaultTracer()
	tracer.SetSampleRate(traceSample)
	tracer.SetSlowThreshold(time.Duration(slowMS) * time.Millisecond)
	tracer.SetLogger(logger)

	sopts := core.ServiceOptions{
		Dir:            dataDir,
		LazyActivation: ten.lazy,
		Quotas:         ten.quotas,
	}
	if ten.memoryBudget != "" {
		if sopts.MemoryBudget, err = parseBytes(ten.memoryBudget); err != nil {
			return fmt.Errorf("-memory-budget: %w", err)
		}
	}
	var policy wal.SyncPolicy
	if dataDir != "" {
		if policy, err = wal.ParseSyncPolicy(walSync); err != nil {
			return err
		}
		sopts.Sync = policy
	}
	svc, report, err := core.OpenService(sopts)
	if svc == nil {
		return err // the data directory (or option set) itself is unusable
	}
	if err != nil {
		// Partial loads keep the healthy repositories; log and serve.
		logger.Warn("restore incomplete", "err", err)
	}
	if dataDir != "" {
		logger.Info("recovered repositories",
			"count", report.Repositories,
			"cold", report.ColdRepositories,
			"wal_records_replayed", report.ReplayedRecords,
			"wal_bytes_replayed", report.ReplayedBytes,
			"torn_bytes_discarded", report.TornBytes,
			"orphans_removed", report.OrphansRemoved,
			"wal_sync", policy.String(),
			"lazy", ten.lazy,
			"memory_budget", sopts.MemoryBudget,
			"dir", dataDir)
	}

	if debugAddr != "" {
		dbg, err := obs.ServeDebug(debugAddr, obs.Default(), logger,
			obs.WithTracer(tracer),
			obs.WithHandler("/debug/leakage", leakageHandler(svc)))
		if err != nil {
			return err
		}
		defer func() { _ = dbg.Close() }()
	}

	sopts2 := []server.Option{server.WithTracer(tracer)}
	switch role {
	case "":
	case "leader":
		if dataDir == "" {
			return fmt.Errorf("-role leader requires -data-dir (replication ships the WAL)")
		}
		hub := replica.NewHub(svc, obs.Default())
		sopts2 = append(sopts2,
			server.WithReplication(hub),
			server.WithNodeStatus(func() server.NodeStatus {
				return server.NodeStatus{Role: "leader", CaughtUp: true}
			}))
	case "follower":
		if dataDir == "" {
			return fmt.Errorf("-role follower requires -data-dir (the replica re-logs applied records)")
		}
		if peers == "" {
			return fmt.Errorf("-role follower requires -peers with the leader address")
		}
		fol, err := replica.StartFollower(svc, peers, obs.Default(), logger)
		if err != nil {
			return err
		}
		defer fol.Close()
		fwd := replica.NewForwarder(peers)
		defer func() { _ = fwd.Close() }()
		sopts2 = append(sopts2,
			server.WithForwarder(fwd),
			server.WithNodeStatus(func() server.NodeStatus {
				st := fol.Status()
				return server.NodeStatus{Role: "follower", CaughtUp: st.CaughtUp, LagNanos: st.LagNanos}
			}))
	default:
		return fmt.Errorf("-role must be empty, leader or follower (got %q)", role)
	}

	srv, err := server.New(addr, svc, logger, sopts2...)
	if err != nil {
		return err
	}
	logger.Info("serving", "addr", srv.Addr(), "role", role)

	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	if dataDir != "" && snapEvery > 0 {
		go func() {
			defer close(snapDone)
			ticker := time.NewTicker(snapEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := core.SaveService(svc, dataDir); err != nil {
						logger.Error("periodic snapshot failed", "err", err)
					}
				case <-stopSnap:
					return
				}
			}
		}()
	} else {
		close(snapDone)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	close(stopSnap)
	<-snapDone
	if dataDir != "" {
		if err := core.SaveService(svc, dataDir); err != nil {
			logger.Error("final snapshot failed", "err", err)
		} else {
			logger.Info("snapshots written", "dir", dataDir)
		}
	}
	return srv.Close()
}

// leakageHandler serves the per-repository leakage profiles as JSON — what
// the honest-but-curious cloud has observed so far (Table I, counted).
func leakageHandler(svc *core.Service) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(svc.LeakageSummaries())
	})
}
