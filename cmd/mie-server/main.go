// Command mie-server runs the untrusted MIE cloud component: it hosts
// repositories, stores ciphertexts and DPE encodings, trains codebooks and
// answers encrypted multimodal queries over the wire protocol.
//
// Usage:
//
//	mie-server [-addr :7709] [-data-dir /var/lib/mie] [-snapshot-every 5m]
//
// With -data-dir the server restores all repositories from snapshots on
// startup and persists them on shutdown and every -snapshot-every interval.
// The server holds no key material: everything it stores and computes on is
// encrypted or encoded client-side. Point mie-client (or any program built
// on the public mie package) at its address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mie/internal/core"
	"mie/internal/server"
)

func main() {
	addr := flag.String("addr", ":7709", "listen address")
	dataDir := flag.String("data-dir", "", "snapshot directory for durable repositories (empty = in-memory only)")
	snapEvery := flag.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval (with -data-dir)")
	flag.Parse()
	if err := run(*addr, *dataDir, *snapEvery); err != nil {
		fmt.Fprintln(os.Stderr, "mie-server:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, snapEvery time.Duration) error {
	logger := log.New(os.Stderr, "mie-server ", log.LstdFlags)

	svc := core.NewService()
	if dataDir != "" {
		loaded, err := core.LoadService(dataDir, nil)
		if err != nil {
			// Partial loads keep the healthy repositories; log and serve.
			logger.Printf("restore warning: %v", err)
		}
		svc = loaded
		logger.Printf("restored %d repositories from %s", len(svc.Repositories()), dataDir)
	}

	srv, err := server.New(addr, svc, logger)
	if err != nil {
		return err
	}
	logger.Printf("serving on %s", srv.Addr())

	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	if dataDir != "" && snapEvery > 0 {
		go func() {
			defer close(snapDone)
			ticker := time.NewTicker(snapEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := core.SaveService(svc, dataDir); err != nil {
						logger.Printf("periodic snapshot: %v", err)
					}
				case <-stopSnap:
					return
				}
			}
		}()
	} else {
		close(snapDone)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Print("shutting down")
	close(stopSnap)
	<-snapDone
	if dataDir != "" {
		if err := core.SaveService(svc, dataDir); err != nil {
			logger.Printf("final snapshot: %v", err)
		} else {
			logger.Printf("snapshots written to %s", dataDir)
		}
	}
	return srv.Close()
}
